"""Simulated tasks (processes).

A task owns a virtual address space: a :class:`~repro.kernel.vma.VMAList`
and a :class:`~repro.kernel.pagetable.PageTable`.  All memory operations
go through the :class:`~repro.kernel.kernel.Kernel` facade; the task
object itself is pure state plus convenience wrappers, so tests can
construct precise scenarios.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.physmem import PAGE_SIZE
from repro.kernel.pagetable import PageTable
from repro.kernel.vma import VMAList

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class Task:
    """One simulated process."""

    def __init__(self, kernel: "Kernel", pid: int, uid: int = 1000,
                 name: str = "") -> None:
        self._kernel = kernel
        self.pid = pid
        self.uid = uid
        self.name = name or f"task{pid}"
        self.capabilities: set[str] = set()
        self.page_table = PageTable()
        self.vmas = VMAList()
        #: next mmap placement hint, in vpns (grows upward)
        self.mmap_hint_vpn = 0x1000
        #: cleared by the kernel when the task is torn down
        self.alive = True
        #: statistics
        self.minor_faults = 0
        self.major_faults = 0

    # -- address helpers -------------------------------------------------------

    @staticmethod
    def vpn_of(va: int) -> int:
        """Virtual page number of byte address ``va``."""
        return va // PAGE_SIZE

    @staticmethod
    def va_of(vpn: int) -> int:
        """Byte address of the start of ``vpn``."""
        return vpn * PAGE_SIZE

    # -- convenience wrappers over kernel syscalls -------------------------------

    def mmap(self, npages: int, writable: bool = True, name: str = "") -> int:
        """Map ``npages`` anonymous pages; returns the base virtual
        address.  See :meth:`repro.kernel.kernel.Kernel.sys_mmap`."""
        return self._kernel.sys_mmap(self, npages, writable=writable,
                                     name=name)

    def munmap(self, va: int, npages: int) -> None:
        """Unmap ``npages`` starting at ``va``."""
        self._kernel.sys_munmap(self, va, npages)

    def exit(self) -> None:
        """Terminate this task (see
        :meth:`repro.kernel.kernel.Kernel.exit_task`)."""
        self._kernel.exit_task(self)

    def write(self, va: int, data: bytes) -> None:
        """Store ``data`` at ``va`` (faulting pages in as needed)."""
        self._kernel.user_write(self, va, data)

    def read(self, va: int, length: int) -> bytes:
        """Load ``length`` bytes from ``va`` (faulting pages in)."""
        return self._kernel.user_read(self, va, length)

    def touch_pages(self, va: int, npages: int, fill: bytes = b"") -> None:
        """Write one byte (or ``fill``) to each page of the range — the
        paper's way to "make sure each virtual page is mapped to a
        distinct physical page" (step 1 of the experiment)."""
        for i in range(npages):
            payload = fill if fill else bytes([i & 0xFF])
            self.write(va + i * PAGE_SIZE, payload)

    def resident_pages(self) -> int:
        """Current RSS in pages."""
        return self.page_table.resident_count()

    def physical_pages(self, va: int, npages: int) -> list[int | None]:
        """The frame numbers currently backing each page of the range;
        ``None`` for non-resident pages.  This is the probe the paper's
        experiment uses in steps 2 and 6 ("the physical addresses of all
        pages are derived from the page tables again and compared")."""
        out: list[int | None] = []
        for i in range(npages):
            pte = self.page_table.lookup(self.vpn_of(va) + i)
            out.append(pte.frame if pte is not None and pte.present else None)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(pid={self.pid}, uid={self.uid}, name={self.name!r})"
