"""Kernel I/O buffers (kiobufs) — the mechanism the paper's proposal
builds on.

Section 4.2: "The RAW I/O mechanism was introduced to the Linux kernel by
Stephen C. Tweedie of RedHat in order to accelerate SCSI disk accesses."
A kiobuf maps a user-space range for kernel/device I/O:
``map_user_kiobuf`` faults every page in, takes a page reference, records
the physical pages, and **pins them against reclaim**; ``unmap_kiobuf``
reverses all of it.

Reconstruction note (the paper's text is truncated here — see DESIGN.md):
we model the pin as a per-page counter (``PageDescriptor.pin_count``)
rather than the single ``PG_locked`` bit, because that is the minimal
semantics under which the paper's two requirements both hold:

* **reliability** — ``swap_out`` skips pinned pages, and
* **multiple registrations** — two kiobufs over the same page take two
  pins; unmapping one leaves the page pinned.

A single lock bit cannot express the second property (that is exactly the
Giganet hazard benchmark E6 quantifies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.events import PIN, UNPIN
from repro.errors import KiobufError, ProcessKilled
from repro.hw.physmem import PAGE_SIZE
from repro.kernel.fault import handle_fault
from repro.kernel.flags import VM_WRITE
from repro.sim.faults import crash_if_due

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


@dataclass
class Kiobuf:
    """One mapped kernel I/O buffer."""

    kiobuf_id: int
    pid: int
    va: int                      #: user virtual base address
    nbytes: int
    frames: list[int] = field(default_factory=list)
    mapped: bool = True

    @property
    def npages(self) -> int:
        return len(self.frames)

    def physical_segments(self) -> list[tuple[int, int]]:
        """Flat ``(phys_addr, length)`` segments covering the buffer, for
        scatter/gather DMA."""
        segs: list[tuple[int, int]] = []
        offset = self.va % PAGE_SIZE
        remaining = self.nbytes
        for i, frame in enumerate(self.frames):
            start = offset if i == 0 else 0
            n = min(remaining, PAGE_SIZE - start)
            segs.append((frame * PAGE_SIZE + start, n))
            remaining -= n
        return segs


def map_user_kiobuf(kernel: "Kernel", task: "Task", va: int,
                    nbytes: int, write: bool = True) -> Kiobuf:
    """Map ``[va, va+nbytes)`` of ``task`` into a kiobuf.

    For every page of the range: fault it in if necessary (charging the
    corresponding minor/major fault costs), take a page reference, take a
    pin, and record the frame.  The page-table walk happens *here, inside
    the kernel* — which is why the mechanism satisfies the mainline rule
    that drivers must not walk page tables themselves (Sec. 4.1).

    Raises :class:`~repro.errors.SegmentationFault` (propagated from the
    fault handler) if the range is not fully mapped by VMAs or lacks
    write permission when ``write`` is requested.
    """
    if nbytes <= 0:
        raise KiobufError(f"cannot map {nbytes} bytes")
    kernel.clock.charge(kernel.costs.kiobuf_setup_ns, "kiobuf")
    start_vpn = va // PAGE_SIZE
    end_vpn = (va + nbytes - 1) // PAGE_SIZE + 1

    frames: list[int] = []
    pinned: list[int] = []
    try:
        for vpn in range(start_vpn, end_vpn):
            kernel.clock.charge(kernel.costs.pagetable_walk_ns, "kiobuf")
            pte = task.page_table.lookup(vpn)
            if pte is None or not pte.present or (
                    write and not pte.writable and pte.cow):
                # Fault the page in (demand-zero, swap-in, or COW break).
                handle_fault(kernel, task, vpn, write=write)
                pte = task.page_table.lookup(vpn)
            else:
                vma = task.vmas.find_or_fault(vpn)
                if write and not (vma.flags & VM_WRITE):
                    # Permission check identical to the fault path.
                    handle_fault(kernel, task, vpn, write=True)
            assert pte is not None and pte.present
            pd = kernel.pagemap.get_page(pte.frame)
            pd.pin()
            kernel.clock.charge(kernel.costs.page_lock_ns, "kiobuf")
            frames.append(pte.frame)
            pinned.append(pte.frame)
            if kernel.events.active:
                kernel.events.emit(PIN, frames=(pte.frame,), pid=task.pid)
            # Crash point after each page pin: a death here leaves pins
            # that predate the kiobuf record, so the exit-path sweep
            # cannot see them — the unwind below must release them.
            crash_if_due(kernel.fault_plan, kernel, task, "kiobuf.pin")
    except ProcessKilled:
        # The mapper itself died at a crash point.  The kill already ran
        # the exit path, but these partial pins are invisible to it (no
        # kiobuf record exists yet): unwind them here, then let the
        # control-flow exception keep propagating.
        _unwind_pins(kernel, pinned, task.pid)
        raise
    except Exception:
        # Unwind partial pins so a failed map leaves no residue.
        _unwind_pins(kernel, pinned, task.pid)
        raise

    kio = Kiobuf(kiobuf_id=kernel._next_kiobuf_id, pid=task.pid,
                 va=va, nbytes=nbytes, frames=frames)
    kernel._next_kiobuf_id += 1
    kernel.kiobufs[kio.kiobuf_id] = kio
    kernel.trace.emit("kiobuf_map", kiobuf=kio.kiobuf_id, pid=task.pid,
                      va=va, npages=len(frames))
    return kio


def _unwind_pins(kernel: "Kernel", pinned: list[int], pid: int) -> None:
    """Release partial pins of a failed ``map_user_kiobuf``."""
    for frame in pinned:
        pd = kernel.pagemap.page(frame)
        pd.unpin()
        kernel.pagemap.put_page(frame)
    if pinned and kernel.events.active:
        kernel.events.emit(UNPIN, frames=tuple(pinned), pid=pid)


def unmap_kiobuf(kernel: "Kernel", kio: Kiobuf) -> None:
    """Release a kiobuf: drop one pin and one reference per page.

    Unmapping the same kiobuf twice is an error (the kernel would corrupt
    counters; we raise instead).
    """
    if not kio.mapped:
        raise KiobufError(f"kiobuf {kio.kiobuf_id} already unmapped")
    for frame in kio.frames:
        pd = kernel.pagemap.page(frame)
        pd.unpin()
        kernel.clock.charge(kernel.costs.page_lock_ns, "kiobuf")
        kernel.pagemap.put_page(frame)
    kio.mapped = False
    kernel.kiobufs.pop(kio.kiobuf_id, None)
    if kernel.events.active:
        kernel.events.emit(UNPIN, frames=tuple(kio.frames), pid=kio.pid)
    kernel.trace.emit("kiobuf_unmap", kiobuf=kio.kiobuf_id, pid=kio.pid,
                      npages=kio.npages)
