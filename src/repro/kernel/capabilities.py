"""Process capabilities — the pieces of the Linux capability model that
gate ``mlock``.

Section 3.2: "The privileges of a process are controlled by capabilities,
and only root processes have got the CAP_IPC_LOCK capability for locking
memory.  As the capabilities can be changed by the kernel, the Kernel
Agent's registration function can grant that capability to the current
process by means of cap_raise(), then call do_mlock and reclaim the
capability again by cap_lower()."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Task

#: Capability allowing a process to lock memory (mlock/mlockall/SHM_LOCK).
CAP_IPC_LOCK = "CAP_IPC_LOCK"

#: Root's uid.
ROOT_UID = 0


def capable(task: "Task", cap: str) -> bool:
    """True if ``task`` holds ``cap``.

    Root (uid 0) implicitly holds every capability, matching the kernel's
    ``capable()`` for the pre-securebits common case.
    """
    return task.uid == ROOT_UID or cap in task.capabilities


def cap_raise(task: "Task", cap: str) -> None:
    """Grant ``cap`` to ``task`` (kernel-internal; no permission check —
    only kernel code such as the VIA Kernel Agent may call this)."""
    task.capabilities.add(cap)


def cap_lower(task: "Task", cap: str) -> None:
    """Revoke ``cap`` from ``task`` (no-op if not held)."""
    task.capabilities.discard(cap)
