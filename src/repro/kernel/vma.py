"""VM areas — ``vm_area_struct`` and the per-task VMA list.

``do_mlock`` operates at VMA granularity: "do_mlock sets the VM_LOCKED
flag of all VMAs corresponding to the given virtual address range.  The
original VMAs are split up if necessary" (Sec. 3.2).  The split/merge
logic here exists to reproduce exactly that behaviour (and its cost,
charged per split).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import InvalidArgument, SegmentationFault
from repro.kernel.flags import VM_LOCKED, VMA_FLAG_NAMES, describe_flags


@dataclass
class VMArea:
    """One contiguous virtual memory area, ``[start_vpn, end_vpn)``."""

    start_vpn: int
    end_vpn: int
    flags: int
    name: str = ""

    @property
    def npages(self) -> int:
        return self.end_vpn - self.start_vpn

    def contains(self, vpn: int) -> bool:
        """True iff ``vpn`` lies inside this area."""
        return self.start_vpn <= vpn < self.end_vpn

    @property
    def locked(self) -> bool:
        """VM_LOCKED is set — swap_out skips this area."""
        return bool(self.flags & VM_LOCKED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VMArea([{self.start_vpn}, {self.end_vpn}), "
                f"{describe_flags(self.flags, VMA_FLAG_NAMES)}, "
                f"{self.name!r})")


class VMAList:
    """Sorted, non-overlapping list of :class:`VMArea`.

    Supports the operations the paper's mechanisms need: lookup
    (``find_vma``), insertion, removal, range splitting (the ``do_mlock``
    path), flag updates over a range, and adjacent-merge of equal-flag
    neighbours.
    """

    def __init__(self) -> None:
        self._areas: list[VMArea] = []

    # -- basic queries -------------------------------------------------------

    def __iter__(self) -> Iterator[VMArea]:
        return iter(self._areas)

    def __len__(self) -> int:
        return len(self._areas)

    def find(self, vpn: int) -> VMArea | None:
        """``find_vma``: the area containing ``vpn``, or None."""
        for area in self._areas:
            if area.contains(vpn):
                return area
            if area.start_vpn > vpn:
                break
        return None

    def find_or_fault(self, vpn: int) -> VMArea:
        """Like :meth:`find` but raises SegmentationFault on a miss."""
        area = self.find(vpn)
        if area is None:
            raise SegmentationFault(f"no VMA maps vpn {vpn}")
        return area

    def areas_in(self, start_vpn: int, end_vpn: int) -> list[VMArea]:
        """All areas overlapping ``[start_vpn, end_vpn)``."""
        return [a for a in self._areas
                if a.start_vpn < end_vpn and a.end_vpn > start_vpn]

    def covers(self, start_vpn: int, end_vpn: int) -> bool:
        """True iff every vpn in ``[start_vpn, end_vpn)`` is inside some
        area (no holes)."""
        need = start_vpn
        for area in self._areas:
            if area.end_vpn <= need:
                continue
            if area.start_vpn > need:
                return False
            need = area.end_vpn
            if need >= end_vpn:
                return True
        return need >= end_vpn

    # -- mutation --------------------------------------------------------------

    def insert(self, area: VMArea) -> None:
        """Insert a new area; overlap with an existing one is an error."""
        if area.start_vpn >= area.end_vpn:
            raise InvalidArgument(
                f"empty VMA [{area.start_vpn}, {area.end_vpn})")
        if self.areas_in(area.start_vpn, area.end_vpn):
            raise InvalidArgument(
                f"VMA [{area.start_vpn}, {area.end_vpn}) overlaps an "
                f"existing area")
        self._areas.append(area)
        self._areas.sort(key=lambda a: a.start_vpn)

    def remove_range(self, start_vpn: int, end_vpn: int) -> list[VMArea]:
        """Unmap ``[start_vpn, end_vpn)``: split boundary areas and drop
        everything inside.  Returns the removed (sub)areas."""
        splits = self.split_range(start_vpn, end_vpn)
        removed = [a for a in self._areas
                   if start_vpn <= a.start_vpn and a.end_vpn <= end_vpn]
        self._areas = [a for a in self._areas if a not in removed]
        del splits  # splitting already happened; count returned by caller
        return removed

    def split_at(self, vpn: int) -> bool:
        """Split the area containing ``vpn`` at ``vpn``; True if a split
        happened (no-op if ``vpn`` is already a boundary or unmapped)."""
        for i, area in enumerate(self._areas):
            if area.contains(vpn) and area.start_vpn != vpn:
                left = replace(area, end_vpn=vpn)
                right = replace(area, start_vpn=vpn)
                self._areas[i:i + 1] = [left, right]
                return True
        return False

    def split_range(self, start_vpn: int, end_vpn: int) -> int:
        """Ensure ``start_vpn`` and ``end_vpn`` are area boundaries;
        returns the number of splits performed (for cost charging)."""
        splits = 0
        if self.split_at(start_vpn):
            splits += 1
        if self.split_at(end_vpn):
            splits += 1
        return splits

    def set_flags_range(self, start_vpn: int, end_vpn: int,
                        set_bits: int = 0, clear_bits: int = 0) -> int:
        """Set/clear flag bits on every area fully inside
        ``[start_vpn, end_vpn)`` (callers must have split first);
        returns the number of areas touched."""
        touched = 0
        for area in self._areas:
            if start_vpn <= area.start_vpn and area.end_vpn <= end_vpn:
                area.flags = (area.flags | set_bits) & ~clear_bits
                touched += 1
        return touched

    def merge_adjacent(self) -> int:
        """Merge neighbouring areas with identical flags and names;
        returns the number of merges (kernel ``vma_merge``)."""
        merged = 0
        out: list[VMArea] = []
        for area in self._areas:
            if (out and out[-1].end_vpn == area.start_vpn
                    and out[-1].flags == area.flags
                    and out[-1].name == area.name):
                out[-1] = replace(out[-1], end_vpn=area.end_vpn)
                merged += 1
            else:
                out.append(replace(area))
        self._areas = out
        return merged

    def total_pages(self) -> int:
        """Total mapped pages across all areas."""
        return sum(a.npages for a in self._areas)

    def locked_pages(self) -> int:
        """Total pages inside VM_LOCKED areas."""
        return sum(a.npages for a in self._areas if a.locked)
