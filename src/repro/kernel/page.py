"""Per-frame page descriptor — the simulator's ``mem_map_t``.

Section 2.1 of the paper: "The Linux kernel keeps a so called mem_map_t
data structure for each physical page in the system.  This structure
contains ... a reference counter and a flag field.  If the reference
counter is zero the page is free, otherwise the counter denotes the
number of users of the page."

We add one field with no 2.2-era equivalent: ``pin_count``, the per-page
pin counter maintained by the kiobuf layer (our reconstruction of the
paper's proposal, see DESIGN.md §5).  A page with ``pin_count > 0`` is
skipped by ``swap_out`` exactly as a ``PG_locked`` page is.

Storage layout: the per-frame state lives in a :class:`FrameTable` — a
structure-of-arrays column store (``array('q')`` per numeric field) —
and :class:`PageDescriptor` is a lightweight *view* binding one frame of
one table.  This keeps cluster-scale page maps cheap (seven machine
words per frame instead of a Python object per frame) and lets the
table maintain incremental index sets (:attr:`FrameTable.pinned`,
:attr:`FrameTable.orphan_candidates`) so the post-test audits and the
orphan reaper stop scanning every frame.  A ``PageDescriptor``
constructed standalone (as unit tests do) gets a private single-frame
table and behaves exactly like the old dataclass.
"""

from __future__ import annotations

from array import array

from repro.errors import PageAccountingError
from repro.kernel.flags import (
    PAGE_FLAG_NAMES, PG_LOCKED, PG_PAGECACHE, PG_REFERENCED, PG_RESERVED,
    describe_flags,
)

#: Debugging label under which paging strands Sec. 3.1 orphan frames.
ORPHAN_TAG = "orphan"


class FrameTable:
    """Structure-of-arrays backing store for all frames of one machine.

    Numeric columns are ``array('q')`` (one signed machine word per
    frame, no per-frame Python objects); ``mappings`` and ``tags`` stay
    Python lists because they hold tuples/strings.  Two index sets are
    maintained *incrementally* by the mutators:

    ``pinned``
        frames with ``pin_count > 0`` — lets pin-leak audits iterate
        only pinned frames instead of the whole table;
    ``orphan_candidates``
        frames whose ``tag == "orphan"`` — lets ``PageMap.orphans()``
        and the reaper's orphan sweep skip the full-table scan.

    All writes must go through the mutator methods here or through a
    :class:`PageDescriptor` view (whose setters delegate), so the index
    sets can never go stale.
    """

    __slots__ = ("num_frames", "counts", "flags", "pin_counts", "ages",
                 "cow_shares", "mappings", "tags", "pinned",
                 "orphan_candidates")

    def __init__(self, num_frames: int) -> None:
        zeros = bytes(8 * num_frames)
        self.num_frames = num_frames
        self.counts = array("q", zeros)
        self.flags = array("q", zeros)
        self.pin_counts = array("q", zeros)
        self.ages = array("q", zeros)
        self.cow_shares = array("q", zeros)
        self.mappings: list[tuple[int, int] | None] = [None] * num_frames
        self.tags: list[str] = [""] * num_frames
        self.pinned: set[int] = set()
        self.orphan_candidates: set[int] = set()

    # -- mutators that keep the index sets honest -------------------------

    def set_pin_count(self, frame: int, value: int) -> None:
        """Set ``frame``'s pin count, keeping the pinned set in step."""
        self.pin_counts[frame] = value
        if value > 0:
            self.pinned.add(frame)
        else:
            self.pinned.discard(frame)

    def incr_pin(self, frame: int) -> None:
        """Take one pin on ``frame`` (adds it to the pinned set)."""
        self.pin_counts[frame] += 1
        self.pinned.add(frame)

    def decr_pin(self, frame: int) -> None:
        """Drop one pin on ``frame``; underflow is an accounting
        violation.  Removes it from the pinned set at zero."""
        if self.pin_counts[frame] <= 0:
            raise PageAccountingError(
                f"pin-count underflow on frame {frame}")
        self.pin_counts[frame] -= 1
        if self.pin_counts[frame] == 0:
            self.pinned.discard(frame)

    def set_tag(self, frame: int, tag: str) -> None:
        """Set ``frame``'s debugging label, keeping the orphan-candidate
        set in step."""
        self.tags[frame] = tag
        if tag == ORPHAN_TAG:
            self.orphan_candidates.add(frame)
        else:
            self.orphan_candidates.discard(frame)

    def reset_frame(self, frame: int, tag: str = "") -> None:
        """Alloc-time reset to a fresh single-reference state."""
        self.counts[frame] = 1
        self.flags[frame] = 0
        self.set_pin_count(frame, 0)
        self.ages[frame] = 0
        self.mappings[frame] = None
        self.cow_shares[frame] = 0
        self.set_tag(frame, tag)

    def scrub_identity(self, frame: int) -> None:
        """Free-time scrub of everything but the counters."""
        self.flags[frame] = 0
        self.mappings[frame] = None
        self.cow_shares[frame] = 0
        self.set_tag(frame, "")

    # -- audit helpers -----------------------------------------------------

    def min_count(self) -> int:
        """Smallest reference count across all frames (C-speed)."""
        return min(self.counts) if self.counts else 0

    def min_pin_count(self) -> int:
        """Smallest pin count across all frames (C-speed)."""
        return min(self.pin_counts) if self.pin_counts else 0


class PageDescriptor:
    """State of one physical page frame — a view over a FrameTable.

    Normally created bound to a :class:`~repro.kernel.pagemap.PageMap`'s
    shared table (one cached view per frame); constructing one directly
    (``PageDescriptor(frame=0)``) allocates a private single-frame table
    so the object behaves like the historical standalone dataclass.
    """

    __slots__ = ("frame", "_table", "_index")

    def __init__(self, frame: int = 0, count: int = 0, flags: int = 0,
                 pin_count: int = 0, age: int = 0,
                 mapping: tuple[int, int] | None = None,
                 cow_shares: int = 0, tag: str = "") -> None:
        self.frame = frame
        table = FrameTable(1)
        # Standalone views always index slot 0 of their private table;
        # ``frame`` is just the reported frame number.
        table.counts[0] = count
        table.flags[0] = flags
        table.set_pin_count(0, pin_count)
        table.ages[0] = age
        table.mappings[0] = mapping
        table.cow_shares[0] = cow_shares
        table.set_tag(0, tag)
        self._table = table
        self._index = 0

    @classmethod
    def bound(cls, table: FrameTable, frame: int) -> "PageDescriptor":
        """A view over ``table``'s row ``frame`` (no private storage)."""
        pd = object.__new__(cls)
        pd.frame = frame
        pd._table = table
        pd._index = frame
        return pd

    # -- columns -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Reference counter; 0 ⇔ free."""
        return self._table.counts[self._index]

    @count.setter
    def count(self, value: int) -> None:
        self._table.counts[self._index] = value

    @property
    def flags(self) -> int:
        """PG_* flag word."""
        return self._table.flags[self._index]

    @flags.setter
    def flags(self, value: int) -> None:
        self._table.flags[self._index] = value

    @property
    def pin_count(self) -> int:
        """Kiobuf pins (reconstruction; see DESIGN.md)."""
        return self._table.pin_counts[self._index]

    @pin_count.setter
    def pin_count(self, value: int) -> None:
        self._table.set_pin_count(self._index, value)

    @property
    def age(self) -> int:
        """Clock-algorithm age."""
        return self._table.ages[self._index]

    @age.setter
    def age(self, value: int) -> None:
        self._table.ages[self._index] = value

    @property
    def mapping(self) -> tuple[int, int] | None:
        """Reverse-map hint: ``(pid, vpn)`` of the (single) process
        mapping, or None.  Anonymous pages in this simulator are never
        shared between page tables except via COW, which tracks sharing
        through ``count``."""
        return self._table.mappings[self._index]

    @mapping.setter
    def mapping(self, value: tuple[int, int] | None) -> None:
        self._table.mappings[self._index] = value

    @property
    def cow_shares(self) -> int:
        """COW sharers: number of PTEs mapping this frame read-only via
        fork-style sharing.  Kept distinct from ``count`` for audit
        clarity."""
        return self._table.cow_shares[self._index]

    @cow_shares.setter
    def cow_shares(self, value: int) -> None:
        self._table.cow_shares[self._index] = value

    @property
    def tag(self) -> str:
        """Debugging label."""
        return self._table.tags[self._index]

    @tag.setter
    def tag(self, value: str) -> None:
        self._table.set_tag(self._index, value)

    # -- flag helpers --------------------------------------------------------

    def set_flag(self, bit: int) -> None:
        """Set a PG_* flag bit."""
        self._table.flags[self._index] |= bit

    def clear_flag(self, bit: int) -> None:
        """Clear a PG_* flag bit."""
        self._table.flags[self._index] &= ~bit

    def test_flag(self, bit: int) -> bool:
        """True iff the PG_* flag bit is set."""
        return bool(self._table.flags[self._index] & bit)

    @property
    def locked(self) -> bool:
        """PG_locked is set."""
        return self.test_flag(PG_LOCKED)

    @property
    def reserved(self) -> bool:
        """PG_reserved is set."""
        return self.test_flag(PG_RESERVED)

    @property
    def referenced(self) -> bool:
        """PG_referenced is set."""
        return self.test_flag(PG_REFERENCED)

    @property
    def in_page_cache(self) -> bool:
        """Page belongs to the simulated page/buffer cache."""
        return self.test_flag(PG_PAGECACHE)

    @property
    def free(self) -> bool:
        """Reference counter is zero."""
        return self.count == 0

    @property
    def pinned(self) -> bool:
        """At least one kiobuf pin is held."""
        return self.pin_count > 0

    # -- counter helpers -------------------------------------------------------

    def get(self) -> None:
        """``get_page`` — take a reference."""
        self._table.counts[self._index] += 1

    def put(self) -> int:
        """``put_page``/``__free_page`` — drop a reference; returns the
        new count.  Underflow is an accounting violation."""
        idx = self._index
        if self._table.counts[idx] <= 0:
            raise PageAccountingError(
                f"refcount underflow on frame {self.frame}")
        self._table.counts[idx] -= 1
        return self._table.counts[idx]

    def pin(self) -> None:
        """Take one kiobuf pin."""
        self._table.incr_pin(self._index)

    def unpin(self) -> None:
        """Drop one kiobuf pin; underflow is an accounting violation."""
        idx = self._index
        if self._table.pin_counts[idx] <= 0:
            raise PageAccountingError(
                f"pin-count underflow on frame {self.frame}")
        self._table.decr_pin(idx)

    # -- dataclass-compatible comparison (tag excluded, as before) -----------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PageDescriptor):
            return NotImplemented
        return (self.frame == other.frame
                and self.count == other.count
                and self.flags == other.flags
                and self.pin_count == other.pin_count
                and self.age == other.age
                and self.mapping == other.mapping
                and self.cow_shares == other.cow_shares)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PageDescriptor(frame={self.frame}, count={self.count}, "
                f"pins={self.pin_count}, "
                f"flags={describe_flags(self.flags, PAGE_FLAG_NAMES)})")
