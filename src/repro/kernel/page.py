"""Per-frame page descriptor — the simulator's ``mem_map_t``.

Section 2.1 of the paper: "The Linux kernel keeps a so called mem_map_t
data structure for each physical page in the system.  This structure
contains ... a reference counter and a flag field.  If the reference
counter is zero the page is free, otherwise the counter denotes the
number of users of the page."

We add one field with no 2.2-era equivalent: ``pin_count``, the per-page
pin counter maintained by the kiobuf layer (our reconstruction of the
paper's proposal, see DESIGN.md §5).  A page with ``pin_count > 0`` is
skipped by ``swap_out`` exactly as a ``PG_locked`` page is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PageAccountingError
from repro.kernel.flags import (
    PAGE_FLAG_NAMES, PG_LOCKED, PG_PAGECACHE, PG_REFERENCED, PG_RESERVED,
    describe_flags,
)


@dataclass
class PageDescriptor:
    """State of one physical page frame."""

    frame: int                 #: frame number (index into mem_map)
    count: int = 0             #: reference counter; 0 ⇔ free
    flags: int = 0             #: PG_* flag word
    pin_count: int = 0         #: kiobuf pins (reconstruction; see DESIGN.md)
    age: int = 0               #: clock-algorithm age
    #: Reverse-map hint: ``(pid, vpn)`` of the (single) process mapping, or
    #: None.  Anonymous pages in this simulator are never shared between
    #: page tables except via COW, which tracks sharing through ``count``.
    mapping: tuple[int, int] | None = None
    #: COW sharers: number of PTEs mapping this frame read-only via fork-
    #: style sharing.  Kept distinct from ``count`` for audit clarity.
    cow_shares: int = 0
    tag: str = field(default="", compare=False)  #: debugging label

    # -- flag helpers --------------------------------------------------------

    def set_flag(self, bit: int) -> None:
        """Set a PG_* flag bit."""
        self.flags |= bit

    def clear_flag(self, bit: int) -> None:
        """Clear a PG_* flag bit."""
        self.flags &= ~bit

    def test_flag(self, bit: int) -> bool:
        """True iff the PG_* flag bit is set."""
        return bool(self.flags & bit)

    @property
    def locked(self) -> bool:
        """PG_locked is set."""
        return self.test_flag(PG_LOCKED)

    @property
    def reserved(self) -> bool:
        """PG_reserved is set."""
        return self.test_flag(PG_RESERVED)

    @property
    def referenced(self) -> bool:
        """PG_referenced is set."""
        return self.test_flag(PG_REFERENCED)

    @property
    def in_page_cache(self) -> bool:
        """Page belongs to the simulated page/buffer cache."""
        return self.test_flag(PG_PAGECACHE)

    @property
    def free(self) -> bool:
        """Reference counter is zero."""
        return self.count == 0

    @property
    def pinned(self) -> bool:
        """At least one kiobuf pin is held."""
        return self.pin_count > 0

    # -- counter helpers -------------------------------------------------------

    def get(self) -> None:
        """``get_page`` — take a reference."""
        self.count += 1

    def put(self) -> int:
        """``put_page``/``__free_page`` — drop a reference; returns the
        new count.  Underflow is an accounting violation."""
        if self.count <= 0:
            raise PageAccountingError(
                f"refcount underflow on frame {self.frame}")
        self.count -= 1
        return self.count

    def pin(self) -> None:
        """Take one kiobuf pin."""
        self.pin_count += 1

    def unpin(self) -> None:
        """Drop one kiobuf pin; underflow is an accounting violation."""
        if self.pin_count <= 0:
            raise PageAccountingError(
                f"pin-count underflow on frame {self.frame}")
        self.pin_count -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PageDescriptor(frame={self.frame}, count={self.count}, "
                f"pins={self.pin_count}, "
                f"flags={describe_flags(self.flags, PAGE_FLAG_NAMES)})")
