"""The reclaim path: ``try_to_free_pages`` → ``shrink_mmap`` → ``swap_out``.

This module is a line-for-line behavioural port of the algorithm the
paper describes in Section 2.2 ("Discarding pages"):

* ``shrink_mmap`` "applies a so called 'clock algorithm' to go through
  the page map in order to find pages that can be discarded.  Pages with
  the PG_locked bit set are left untouched.  Also pages with a reference
  counter other than one are skipped.  Although shrink_mmap() is a place
  where memory pages are freed it does not touch user pages of a
  process."
* ``swap_out`` "selects a process from the task list ... goes through the
  process' list of virtual memory areas ... VMAs with the VM_LOCKED bit
  set are skipped. ... it writes the page to swap space if necessary and
  calls __free_page().  The latter function decrements the reference
  counter and adds the page to the free list if the counter has reached
  zero.  Like in shrink_mmap(), all pages with the PG_locked bit set
  won't be touched.  The same holds true for reserved pages."

One extension (the paper's proposal, reconstructed): pages with a nonzero
kiobuf ``pin_count`` are skipped like ``PG_locked`` pages.  Without any
pin/lock/VM_LOCKED protection, an *elevated reference count alone does
not stop the steal* — the page is written to swap, the PTE redirected,
and ``__free_page`` merely orphans the frame.  That is the whole bug.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.events import SWAP_OUT
from repro.errors import SwapFull
from repro.kernel.flags import PG_PAGECACHE, PG_REFERENCED

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


def try_to_free_pages(kernel: "Kernel", target: int) -> int:
    """Free at least ``target`` frames if possible; returns frames freed.

    Mirrors ``do_try_to_free_pages``: several passes of decreasing
    "priority", each first shrinking the page/buffer cache and then
    swapping out process pages.
    """
    freed = 0
    kernel.trace.emit("reclaim_start", target=target,
                      free=kernel.pagemap.free_count)
    with kernel.obs.span("kernel.reclaim", target=target):
        for priority in range(6, 0, -1):
            if freed >= target:
                break
            scan_budget = max(16, kernel.pagemap.num_frames // priority)
            freed += shrink_mmap(kernel, scan_budget)
            if freed >= target:
                break
            freed += swap_out(kernel, target - freed)
        if (freed < target and kernel.reaper is not None
                and not kernel.reaper._in_scan):
            # Ordinary reclaim fell short: draft the orphan reaper, whose
            # dead-owner reclamation can free pages pinned by nothing live.
            report = kernel.reaper.scan()
            freed += report.frames_freed
    obs = kernel.obs
    if obs.enabled:
        metrics = obs.metrics
        metrics.counter("kernel.paging.reclaim_runs").inc()
        metrics.counter("kernel.paging.frames_freed").inc(freed)
        if freed < target:
            metrics.counter("kernel.paging.reclaim_shortfalls").inc()
    kernel.trace.emit("reclaim_done", target=target, freed=freed)
    return freed


def shrink_mmap(kernel: "Kernel", scan_budget: int) -> int:
    """Clock algorithm over the page map; frees page-cache pages only.

    Skip rules in scan order (each emits a trace event so tests can
    verify the rule actually fired):

    * ``PG_locked``  → untouched,
    * ``PG_reserved`` → untouched,
    * reference count != 1 → skipped,
    * not a page-cache page → not shrink_mmap's job (user pages belong
      to ``swap_out``),
    * ``PG_referenced`` → second chance: clear the bit, move on.
    """
    pagemap = kernel.pagemap
    freed = 0
    scanned = 0
    n = pagemap.num_frames
    while scanned < scan_budget:
        frame = kernel._clock_hand
        kernel._clock_hand = (kernel._clock_hand + 1) % n
        scanned += 1
        kernel.clock.charge(kernel.costs.reclaim_scan_page_ns, "reclaim")
        pd = pagemap.page(frame)
        if pd.free or pd.locked or pd.reserved:
            continue
        if pd.count != 1:
            continue
        if not pd.in_page_cache:
            continue
        if pd.referenced:
            pd.clear_flag(PG_REFERENCED)
            continue
        # Reclaim the cache page.
        kernel.page_cache.discard(frame)
        pd.clear_flag(PG_PAGECACHE)
        pagemap.put_page(frame)
        kernel.obs.inc("kernel.paging.cache_reclaims")
        kernel.trace.emit("cache_reclaim", frame=frame)
        freed += 1
    return freed


def _pick_victim(kernel: "Kernel") -> "Task | None":
    """Select the task to steal from, using the kernel's ``swap_cnt``
    heuristic: counters initialised from RSS and decremented per steal,
    so pressure is spread across all tasks proportionally — which is why
    "it happens that the locktest process is chosen by the swap_out()
    function" even though the allocator is far bigger."""
    candidates = [t for t in kernel.tasks if t.resident_pages() > 0]
    if not candidates:
        return None
    live = [t for t in candidates if kernel._swap_cnt.get(t.pid, 0) > 0]
    if not live:
        for t in candidates:
            kernel._swap_cnt[t.pid] = t.resident_pages()
        live = candidates
    return max(live, key=lambda t: kernel._swap_cnt.get(t.pid, 0))


def swap_out(kernel: "Kernel", want: int) -> int:
    """Steal up to ``want`` process pages, writing them to swap.

    Returns the number of frames actually *freed* (returned to the free
    list).  Pages whose reference count stays above zero after the steal
    are **unmapped but not freed** — they become the orphans of the
    Sec. 3.1 experiment and do not count toward the return value,
    mirroring how the real kernel's effort is wasted on them.
    """
    freed = 0
    attempts = 0
    max_attempts = want * 8 + 32   # bounded scan; mirrors priority decay
    while freed < want and attempts < max_attempts:
        attempts += 1
        task = _pick_victim(kernel)
        if task is None:
            break
        stolen = _swap_out_task_one(kernel, task)
        if stolen is None:
            # This task had nothing stealable; retire it for this round.
            kernel._swap_cnt[task.pid] = 0
            if all(kernel._swap_cnt.get(t.pid, 0) == 0
                   for t in kernel.tasks if t.resident_pages() > 0):
                break
            continue
        kernel._swap_cnt[task.pid] = max(
            0, kernel._swap_cnt.get(task.pid, 1) - 1)
        if stolen:
            freed += 1
    return freed


def _swap_out_task_one(kernel: "Kernel", task: "Task") -> "bool | None":
    """``swap_out_process``: walk the task's VMAs from its clock hand and
    steal the first eligible page.

    Returns True if a frame was freed, False if a page was unmapped but
    the frame stayed referenced (orphaned), None if nothing was
    stealable.
    """
    hand = kernel._task_swap_hand.get(task.pid, 0)
    entries = [(vpn, pte) for vpn, pte in task.page_table.present_entries()]
    if not entries:
        return None
    # Rotate so the walk resumes where it left off.
    order = [e for e in entries if e[0] >= hand] + \
            [e for e in entries if e[0] < hand]
    for vpn, pte in order:
        kernel.clock.charge(kernel.costs.reclaim_scan_page_ns, "reclaim")
        vma = task.vmas.find(vpn)
        if vma is None:
            continue
        if vma.locked:
            kernel.obs.inc("kernel.paging.swap_skips.VM_LOCKED")
            kernel.trace.emit("swap_skip", reason="VM_LOCKED",
                              pid=task.pid, vpn=vpn)
            continue
        pd = kernel.pagemap.page(pte.frame)
        if pd.locked:
            kernel.obs.inc("kernel.paging.swap_skips.PG_locked")
            kernel.trace.emit("swap_skip", reason="PG_locked",
                              pid=task.pid, vpn=vpn, frame=pd.frame)
            continue
        if pd.reserved:
            kernel.obs.inc("kernel.paging.swap_skips.PG_reserved")
            kernel.trace.emit("swap_skip", reason="PG_reserved",
                              pid=task.pid, vpn=vpn, frame=pd.frame)
            continue
        if pd.pinned:
            # Ask the pin owners before giving up: an ODP-style owner may
            # invalidate its TPT entries and release its just-in-time
            # pins, making the frame stealable after all.  Hooks answer
            # True only when the frame ended up fully unpinned.
            if not any(hook(pd.frame)
                       for hook in list(kernel.pin_eviction_hooks)):
                kernel.obs.inc("kernel.paging.swap_skips.pinned")
                kernel.trace.emit("swap_skip", reason="pinned",
                                  pid=task.pid, vpn=vpn, frame=pd.frame)
                continue
            kernel.obs.inc("kernel.paging.swap_evictions.odp")
        if pd.cow_shares > 0:
            # Simplification: COW-shared pages are not swapped (the real
            # kernel uses the swap cache here; irrelevant to the paper).
            kernel.obs.inc("kernel.paging.swap_skips.cow_shared")
            kernel.trace.emit("swap_skip", reason="cow_shared",
                              pid=task.pid, vpn=vpn, frame=pd.frame)
            continue
        # -- steal it --------------------------------------------------------
        try:
            slot = kernel.swap.alloc_slot()
        except SwapFull:
            return None
        kernel.swap.write_page(slot, kernel.phys.read_frame(pd.frame))
        task.page_table.set_swapped(vpn, slot)
        pd.mapping = None
        refs_before = pd.count
        was_freed = kernel.pagemap.put_page(pd.frame)
        if not was_freed:
            # An extra reference (e.g. a VIA driver's get_page) kept the
            # frame alive: it is now an orphan — unmapped, unfreed.
            pd.tag = "orphan"
        kernel._task_swap_hand[task.pid] = vpn + 1
        obs = kernel.obs
        if obs.enabled:
            obs.metrics.counter("kernel.paging.swap_outs").inc()
            if not was_freed:
                obs.metrics.counter("kernel.paging.orphaned_frames").inc()
        if kernel.events.active:
            kernel.events.emit(SWAP_OUT, pid=task.pid, vpn=vpn,
                               frame=pd.frame, freed=was_freed,
                               actor="reclaim")
        kernel.trace.emit("swap_out", pid=task.pid, vpn=vpn,
                          frame=pd.frame, slot=slot,
                          refs_before=refs_before, freed=was_freed)
        return was_freed
    return None
