"""The kernel facade: boots the machine, owns all subsystems, and exposes
the syscall surface the experiments use.

Construction parameters size the machine; the defaults give a small box
(4 MiB RAM, 16 MiB swap) on which memory pressure is easy to create —
the simulated analogue of the paper's test machine once the *allocator*
process "allocates as much memory as possible forcing a large amount of
pages to be swapped out".
"""

from __future__ import annotations

import os

from repro.analysis.events import MUNMAP, PIN, TASK_EXIT, UNPIN, EventHub
from repro.errors import InvalidArgument, OutOfMemory, SegmentationFault
from repro.hw.dma import DMAEngine
from repro.hw.physmem import PAGE_SIZE, PhysicalMemory
from repro.hw.swapdev import SwapDevice
from repro.kernel import paging
from repro.kernel.fault import handle_fault
from repro.kernel.flags import (
    PG_LOCKED, PG_PAGECACHE, VM_READ, VM_WRITE,
)
from repro.kernel.kiobuf import Kiobuf, map_user_kiobuf, unmap_kiobuf
from repro.kernel.mlock import (
    do_mlock, do_munlock, mlock_with_cap_dance, sys_mlock, sys_munlock,
)
from repro.kernel.page import PageDescriptor
from repro.kernel.pagemap import PageMap
from repro.kernel.task import Task
from repro.kernel.vma import VMArea
from repro.obs import Observability
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.rng import make_rng
from repro.sim.trace import Trace


class Kernel:
    """One booted simulated machine."""

    def __init__(self,
                 num_frames: int = 1024,
                 swap_slots: int = 4096,
                 costs: CostModel | None = None,
                 seed: int = 0,
                 min_free_pages: int = 8,
                 reserved_frames: int = 4,
                 trace_maxlen: int = 65536,
                 clock: SimClock | None = None,
                 trace: Trace | None = None,
                 obs: Observability | None = None,
                 strict_accounting: bool | None = None) -> None:
        self.costs = costs if costs is not None else CostModel()
        #: raise on internal accounting anomalies (COW sharer-count
        #: underflow ...) instead of clamping them silently; defaults to
        #: on whenever the suite runs with the sanitizer strict, so the
        #: chaos jobs catch what a clamp would hide
        self.strict_accounting = (
            strict_accounting if strict_accounting is not None
            else os.environ.get("REPRO_SANITIZE", "") == "strict")
        # A clock/trace/obs may be shared across several machines (a
        # cluster measures end-to-end latency on one timeline and rolls
        # its metrics into one snapshot).
        self.clock = clock if clock is not None else SimClock()
        self.trace = trace if trace is not None else Trace(
            self.clock, maxlen=trace_maxlen)
        self.obs = obs if obs is not None else Observability(self.clock)
        # The analysis event stream is always per-kernel (frame numbers
        # and pids are host-local, so a shared hub would alias them);
        # a Machine relabels ``events.host`` with its own name.
        self.events = EventHub(self.clock)
        #: the installed FaultPlan, if any (see repro.sim.faults.install);
        #: kernel-internal crash points (kiobuf pinning) consult it
        self.fault_plan: object | None = None
        self.rng = make_rng(seed)
        self.phys = PhysicalMemory(num_frames)
        self.swap = SwapDevice(swap_slots, self.clock, self.costs)
        self.pagemap = PageMap(num_frames, self.clock, self.costs,
                               self.trace, reserved_frames=reserved_frames)
        self.dma = DMAEngine(self.phys, self.clock, self.costs, self.trace,
                             name="host-dma", obs=self.obs,
                             events=self.events)
        self.tasks: list[Task] = []
        self.min_free_pages = min_free_pages
        #: simulated page/buffer cache: set of frames
        self.page_cache: set[int] = set()
        #: live kiobufs by id
        self.kiobufs: dict[int, Kiobuf] = {}
        self._next_pid = 1
        self._next_kiobuf_id = 1
        self._clock_hand = 0                    # shrink_mmap clock position
        self._swap_cnt: dict[int, int] = {}     # swap_out victim counters
        self._task_swap_hand: dict[int, int] = {}
        #: drivers register here to reclaim per-task state on exit; each
        #: hook is called with the dying task while it is still findable
        self.exit_hooks: list = []
        #: called after a task is fully torn down (watchdog boundary)
        self.post_exit_hooks: list = []
        #: drivers register here to learn of munmaps before the PTEs and
        #: frames go away; called with (task, start_vpn, end_vpn)
        self.munmap_hooks: list = []
        #: pin-owner eviction hooks: ``swap_out`` consults these before
        #: skipping a pinned frame — a hook that recognises the frame may
        #: release its pins (ODP-style TPT invalidation) and return True,
        #: making the frame stealable after all; called with (frame)
        self.pin_eviction_hooks: list = []
        #: the orphan reaper, once attached (see repro.kernel.reaper);
        #: try_to_free_pages drafts it when ordinary reclaim falls short
        self.reaper = None

    # ------------------------------------------------------------------ tasks

    def create_task(self, uid: int = 1000, name: str = "") -> Task:
        """Spawn a new task with an empty address space."""
        task = Task(self, self._next_pid, uid=uid, name=name)
        self._next_pid += 1
        self.tasks.append(task)
        return task

    def find_task(self, pid: int) -> Task:
        """Look a task up by pid."""
        for t in self.tasks:
            if t.pid == pid:
                return t
        raise InvalidArgument(f"no task with pid {pid}")

    def fork_task(self, parent: Task, name: str = "") -> Task:
        """``fork()``: clone the parent's address space copy-on-write.

        Every resident page becomes shared read-only between parent and
        child; the first write by either side triggers the COW break the
        paper mentions as a ``get_free_pages`` client ("for instance to
        execute a copy-on-write operation").

        Simplification (irrelevant to the paper's mechanisms): pages
        currently in swap are faulted back in before sharing — the real
        kernel shares swap entries through the swap cache instead.
        """
        from repro.kernel.fault import handle_fault
        child = self.create_task(uid=parent.uid,
                                 name=name or f"{parent.name}-child")
        child.capabilities = set(parent.capabilities)
        child.mmap_hint_vpn = parent.mmap_hint_vpn
        for area in parent.vmas:
            child.vmas.insert(VMArea(area.start_vpn, area.end_vpn,
                                     area.flags, name=area.name))
        for vpn in sorted(parent.page_table._entries):
            pte = parent.page_table.lookup(vpn)
            if pte.swapped:
                handle_fault(self, parent, vpn, write=False)
                pte = parent.page_table.lookup(vpn)
            if not pte.present:
                continue
            pd = self.pagemap.get_page(pte.frame)
            # First share establishes two sharers; later forks add one.
            pd.cow_shares = (pd.cow_shares + 1) if pd.cow_shares \
                else 2
            pte.writable = False
            pte.cow = True
            cpte = child.page_table.set_mapping(vpn, pte.frame,
                                                writable=False)
            cpte.cow = True
            self.clock.charge(self.costs.pagetable_walk_ns, "fork")
        self.clock.charge(self.costs.syscall_ns, "fork")
        self.trace.emit("fork", parent=parent.pid, child=child.pid)
        return child

    def exit_task(self, task: Task) -> None:
        """Tear a task down cleanly: run driver exit hooks (VIs torn
        down, registrations dropped, pins released), unmap everything,
        free frames and swap."""
        self.trace.emit("task_exit", pid=task.pid, name=task.name)
        self._teardown_task(task, run_hooks=True)

    def kill(self, pid: int, *, cleanup: bool = True) -> Task:
        """Kill a task by pid (fatal signal / crash).

        With ``cleanup=True`` this is ``exit_task``: the exit path walks
        the driver hooks so no pinned frame or TPT entry outlives the
        process.  ``cleanup=False`` models a *buggy* teardown — the
        address space is still freed (the core kernel always does that)
        but drivers are never notified, leaking whatever they held; the
        orphan reaper exists to converge that state.  Returns the dead
        task so callers can inspect its (now unmapped) identity.
        """
        task = self.find_task(pid)
        self.trace.emit("task_kill", pid=pid, name=task.name,
                        cleanup=cleanup)
        self._teardown_task(task, run_hooks=cleanup)
        return task

    def _teardown_task(self, task: Task, run_hooks: bool) -> None:
        if run_hooks:
            # Driver hooks run first, while the task is still findable:
            # locking backends that need the victim's page tables (the
            # mlock family) must unlock before the address space goes.
            for hook in list(self.exit_hooks):
                hook(task)
            # Kiobufs the hooks did not release (a crash mid-registration
            # pins pages before any registration record exists).
            for kio in [k for k in self.kiobufs.values()
                        if k.pid == task.pid and k.mapped]:
                unmap_kiobuf(self, kio)
        for area in list(task.vmas):
            # During a clean exit the hooks already dropped every
            # registration, so re-notifying munmap hooks is pointless;
            # during a buggy teardown (run_hooks=False) skipping them is
            # the bug being modelled.
            self.sys_munmap(task, area.start_vpn * PAGE_SIZE, area.npages,
                            notify=False)
        task.alive = False
        self.tasks.remove(task)
        self._swap_cnt.pop(task.pid, None)
        self._task_swap_hand.pop(task.pid, None)
        for hook in list(self.post_exit_hooks):
            hook(task)
        if self.events.active:
            self.events.emit(TASK_EXIT, pid=task.pid, cleanup=run_hooks)

    # ------------------------------------------------------- frame allocation

    def alloc_frame(self, tag: str = "") -> PageDescriptor:
        """Allocate one frame, invoking reclaim when the free list runs
        low — the ``get_free_pages → try_to_free_pages`` loop."""
        if self.pagemap.free_count <= self.min_free_pages:
            paging.try_to_free_pages(
                self, self.min_free_pages - self.pagemap.free_count + 4)
        try:
            return self.pagemap.alloc(tag=tag)
        except OutOfMemory:
            freed = paging.try_to_free_pages(self, 4)
            if freed == 0:
                raise OutOfMemory(
                    "out of memory: reclaim freed nothing "
                    f"(free={self.pagemap.free_count})") from None
            return self.pagemap.alloc(tag=tag)

    def apply_pressure(self, target_free: int = 0) -> int:
        """Force reclaim until at most ``target_free`` extra frames could
        be freed — a direct handle for tests that want pressure without
        an allocator task."""
        return paging.try_to_free_pages(
            self, max(1, self.pagemap.free_count + 1 + target_free))

    # ------------------------------------------------------------- mmap/munmap

    def sys_mmap(self, task: Task, npages: int, writable: bool = True,
                 name: str = "") -> int:
        """Map ``npages`` of anonymous memory; returns the base address.

        Demand-paged: no frames are allocated until the task touches the
        pages (step 1 of the experiment exists precisely to defeat this).
        """
        self.clock.charge(self.costs.syscall_ns, "syscall")
        if npages <= 0:
            raise InvalidArgument(f"cannot map {npages} pages")
        flags = VM_READ | (VM_WRITE if writable else 0)
        start_vpn = task.mmap_hint_vpn
        task.mmap_hint_vpn += npages + 1   # guard page gap
        task.vmas.insert(VMArea(start_vpn, start_vpn + npages, flags,
                                name=name or "anon"))
        return start_vpn * PAGE_SIZE

    def sys_munmap(self, task: Task, va: int, npages: int, *,
                   notify: bool = True) -> None:
        """Unmap ``npages`` at ``va``: drop VMAs, PTEs, frames, swap
        slots.

        Munmap hooks (drivers force-deregistering overlapping
        registrations) run *before* anything is dropped, so pins are
        released while the frames still exist; ``notify=False`` is the
        exit path's internal opt-out.
        """
        self.clock.charge(self.costs.syscall_ns, "syscall")
        if va % PAGE_SIZE:
            raise InvalidArgument("munmap address must be page-aligned")
        start_vpn = va // PAGE_SIZE
        end_vpn = start_vpn + npages
        if notify:
            for hook in list(self.munmap_hooks):
                hook(task, start_vpn, end_vpn)
        if self.events.active:
            self.events.emit(MUNMAP, pid=task.pid, start_vpn=start_vpn,
                             end_vpn=end_vpn)
        task.vmas.remove_range(start_vpn, end_vpn)
        for vpn in range(start_vpn, end_vpn):
            pte = task.page_table.lookup(vpn)
            if pte is None:
                continue
            if pte.present:
                pd = self.pagemap.page(pte.frame)
                if pd.mapping == (task.pid, vpn):
                    pd.mapping = None
                if pte.cow and pd.cow_shares > 0:
                    pd.cow_shares -= 1
                self.pagemap.put_page(pte.frame)
            elif pte.swapped:
                self.swap.free_slot(pte.swap_slot)
            task.page_table.clear(vpn)

    # ------------------------------------------------------------- user access

    def _resolve_for_access(self, task: Task, vpn: int, write: bool) -> int:
        """Fault ``vpn`` in as needed for an access; returns the frame."""
        pte = task.page_table.lookup(vpn)
        if (pte is None or not pte.present
                or (write and not pte.writable)):
            frame = handle_fault(self, task, vpn, write=write)
            pte = task.page_table.lookup(vpn)
        else:
            frame = pte.frame
        pte.accessed = True
        if write:
            pte.dirty = True
        return frame

    def user_write(self, task: Task, va: int, data: bytes) -> None:
        """Store ``data`` at ``va`` on behalf of ``task`` (CPU store)."""
        self.clock.charge(self.costs.memcpy_ns(len(data)), "cpu_copy")
        pos = 0
        while pos < len(data):
            vpn = (va + pos) // PAGE_SIZE
            offset = (va + pos) % PAGE_SIZE
            n = min(len(data) - pos, PAGE_SIZE - offset)
            frame = self._resolve_for_access(task, vpn, write=True)
            self.phys.write(frame, offset, data[pos:pos + n])
            pos += n

    def user_read(self, task: Task, va: int, length: int) -> bytes:
        """Load ``length`` bytes from ``va`` on behalf of ``task``."""
        self.clock.charge(self.costs.memcpy_ns(length), "cpu_copy")
        out = bytearray()
        pos = 0
        while pos < length:
            vpn = (va + pos) // PAGE_SIZE
            offset = (va + pos) % PAGE_SIZE
            n = min(length - pos, PAGE_SIZE - offset)
            frame = self._resolve_for_access(task, vpn, write=False)
            out += self.phys.read(frame, offset, n)
            pos += n
        return bytes(out)

    def virt_to_phys(self, task: Task, va: int) -> int:
        """Walk the page tables: flat physical address backing ``va``.

        Raises SegmentationFault if the page is not resident.  This is
        the operation mainline policy forbids drivers from doing — the
        refcount-style locking backends call it anyway, as their real
        counterparts did.
        """
        self.clock.charge(self.costs.pagetable_walk_ns, "mm")
        vpn = va // PAGE_SIZE
        pte = task.page_table.lookup(vpn)
        if pte is None or not pte.present:
            raise SegmentationFault(
                f"virt_to_phys: vpn {vpn} of {task.name} not resident")
        return pte.frame * PAGE_SIZE + (va % PAGE_SIZE)

    # --------------------------------------------------------- mlock interface

    def sys_mlock(self, task: Task, va: int, nbytes: int) -> None:
        """``mlock(2)`` — see :mod:`repro.kernel.mlock`."""
        sys_mlock(self, task, va, nbytes)

    def sys_munlock(self, task: Task, va: int, nbytes: int) -> None:
        """``munlock(2)`` — see :mod:`repro.kernel.mlock`."""
        sys_munlock(self, task, va, nbytes)

    def do_mlock(self, task: Task, va: int, nbytes: int) -> None:
        """Unchecked ``do_mlock`` (User-DMA-patch path)."""
        do_mlock(self, task, va, nbytes)

    def do_munlock(self, task: Task, va: int, nbytes: int) -> None:
        """Unchecked ``do_munlock``."""
        do_munlock(self, task, va, nbytes)

    def mlock_with_cap_dance(self, task: Task, va: int, nbytes: int) -> None:
        """cap_raise → sys_mlock → cap_lower (Sec. 3.2 variant 2)."""
        mlock_with_cap_dance(self, task, va, nbytes)

    # --------------------------------------------------------- kiobuf interface

    def map_user_kiobuf(self, task: Task, va: int, nbytes: int,
                        write: bool = True) -> Kiobuf:
        """Map a user range into a kiobuf — see
        :mod:`repro.kernel.kiobuf`."""
        return map_user_kiobuf(self, task, va, nbytes, write=write)

    def unmap_kiobuf(self, kio: Kiobuf) -> None:
        """Unmap a kiobuf."""
        unmap_kiobuf(self, kio)

    # ----------------------------------------------- get/pin_user_pages

    def pin_user_page(self, task: Task, vpn: int, write: bool = True,
                      charge_tag: str = "odp") -> int:
        """Fault one user page in and pin it — the audited
        ``pin_user_pages``-style entry point the ODP fault service uses.

        Unlike :meth:`map_user_kiobuf` there is no record object: the
        caller owns the (reference, pin) pair and must release it with
        :meth:`unpin_user_page`.  Returns the backing frame.
        """
        pte = task.page_table.lookup(vpn)
        if pte is None or not pte.present or (write and not pte.writable):
            handle_fault(self, task, vpn, write=write)
            pte = task.page_table.lookup(vpn)
        assert pte is not None and pte.present
        pd = self.pagemap.get_page(pte.frame)
        pd.pin()
        self.clock.charge(self.costs.page_lock_ns, charge_tag)
        if self.events.active:
            self.events.emit(PIN, frames=(pte.frame,), pid=task.pid)
        return pte.frame

    def unpin_user_page(self, frame: int, pid: int,
                        charge_tag: str = "odp") -> None:
        """Drop one (reference, pin) pair taken by :meth:`pin_user_page`."""
        pd = self.pagemap.page(frame)
        pd.unpin()
        self.clock.charge(self.costs.page_lock_ns, charge_tag)
        self.pagemap.put_page(frame)
        if self.events.active:
            self.events.emit(UNPIN, frames=(frame,), pid=pid)

    # -------------------------------------------------- page cache (for E6 etc.)

    def add_page_cache_page(self) -> PageDescriptor:
        """Allocate a frame into the simulated page/buffer cache (it
        becomes a shrink_mmap reclaim candidate)."""
        pd = self.alloc_frame(tag="pagecache")
        pd.set_flag(PG_PAGECACHE)
        self.page_cache.add(pd.frame)
        return pd

    def lock_page(self, frame: int) -> None:
        """Kernel-side ``lock_page``: set PG_locked for an I/O in flight."""
        self.clock.charge(self.costs.page_lock_ns, "mm")
        self.pagemap.page(frame).set_flag(PG_LOCKED)

    def unlock_page(self, frame: int) -> None:
        """Kernel-side ``unlock_page``."""
        self.clock.charge(self.costs.page_lock_ns, "mm")
        self.pagemap.page(frame).clear_flag(PG_LOCKED)

    # ----------------------------------------------------------------- stats

    @property
    def free_pages(self) -> int:
        """Frames currently on the free list."""
        return self.pagemap.free_count

    def memory_stats(self) -> dict:
        """Snapshot of memory accounting for reports."""
        resident = sum(t.resident_pages() for t in self.tasks)
        return {
            "total_frames": self.pagemap.num_frames,
            "free_frames": self.pagemap.free_count,
            "resident_task_pages": resident,
            "page_cache_pages": len(self.page_cache),
            "swap_slots_in_use": self.swap.slots_in_use,
            "swap_writes": self.swap.writes,
            "swap_reads": self.swap.reads,
            "orphan_frames": sum(
                1 for frame in self.pagemap.table.orphan_candidates
                if self.pagemap.table.counts[frame] > 0),
        }
