"""Simulated Linux (2.2/2.4-era) kernel memory management.

Faithfully reproduces the mechanisms the paper analyses in Section 2
("The Linux swapping mechanism"):

* a **page map** (``mem_map[]``) of per-frame descriptors carrying a
  reference counter and the ``PG_locked`` / ``PG_reserved`` flags,
* per-task **page tables** and **VM-area lists** with ``VM_LOCKED``,
* **demand paging** with copy-on-write and swap-in,
* the **reclaim path**: ``try_to_free_pages`` → ``shrink_mmap`` (clock
  algorithm) → ``swap_out`` (per-process VMA walk),
* the **kiobuf** subsystem (``map_user_kiobuf`` / ``unmap_kiobuf``),
* ``mlock``/``do_mlock`` and the capability machinery around them.
"""

from repro.kernel.flags import (
    PG_LOCKED, PG_RESERVED, PG_REFERENCED,
    VM_READ, VM_WRITE, VM_LOCKED, VM_IO,
)
from repro.kernel.page import PageDescriptor
from repro.kernel.pagemap import PageMap
from repro.kernel.pagetable import PTE, PageTable
from repro.kernel.vma import VMArea, VMAList
from repro.kernel.task import Task
from repro.kernel.kiobuf import Kiobuf
from repro.kernel.kernel import Kernel

__all__ = [
    "PG_LOCKED", "PG_RESERVED", "PG_REFERENCED",
    "VM_READ", "VM_WRITE", "VM_LOCKED", "VM_IO",
    "PageDescriptor", "PageMap", "PTE", "PageTable",
    "VMArea", "VMAList", "Task", "Kiobuf", "Kernel",
]
