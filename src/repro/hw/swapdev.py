"""Swap device: page-granular backing store.

Models the swap partition the kernel writes victim pages to.  Slots are
allocated/freed by the kernel's reclaim path; each I/O charges the (large)
disk cost to the simulated clock — the "expensive page-in operations
during communication" that motivate pinning in the first place.
"""

from __future__ import annotations

from repro.errors import BadSwapSlot, SwapFull
from repro.hw.physmem import PAGE_SIZE
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel


class SwapDevice:
    """``num_slots`` page-sized swap slots.

    A slot is *in use* between :meth:`alloc_slot` and :meth:`free_slot`.
    Reading or writing a slot that is not in use raises
    :class:`~repro.errors.BadSwapSlot` — the simulator equivalent of swap
    corruption, which must never happen in a correct run.
    """

    def __init__(self, num_slots: int, clock: SimClock,
                 costs: CostModel) -> None:
        if num_slots <= 0:
            raise ValueError("need at least one swap slot")
        self.num_slots = num_slots
        self._clock = clock
        self._costs = costs
        self._data: dict[int, bytes] = {}
        self._free: list[int] = list(range(num_slots - 1, -1, -1))
        self._in_use: set[int] = set()
        self.writes = 0   #: pages ever written (swap-out count)
        self.reads = 0    #: pages ever read (swap-in count)

    # -- slot lifecycle -------------------------------------------------------

    def alloc_slot(self) -> int:
        """Reserve a free slot and return its index."""
        if not self._free:
            raise SwapFull(f"all {self.num_slots} swap slots in use")
        slot = self._free.pop()
        self._in_use.add(slot)
        return slot

    def free_slot(self, slot: int) -> None:
        """Release ``slot`` (its contents become undefined)."""
        self._check(slot)
        self._in_use.discard(slot)
        self._data.pop(slot, None)
        self._free.append(slot)

    def _check(self, slot: int) -> None:
        if slot not in self._in_use:
            raise BadSwapSlot(f"slot {slot} is not in use")

    # -- I/O --------------------------------------------------------------------

    def write_page(self, slot: int, data: bytes) -> None:
        """Write one page of data to ``slot`` (charges disk I/O cost)."""
        self._check(slot)
        if len(data) > PAGE_SIZE:
            raise BadSwapSlot(f"{len(data)} bytes exceed a swap slot")
        self._clock.charge(self._costs.disk_io_page_ns, "disk_io")
        self._data[slot] = bytes(data).ljust(PAGE_SIZE, b"\x00")
        self.writes += 1

    def read_page(self, slot: int) -> bytes:
        """Read one page of data from ``slot`` (charges disk I/O cost)."""
        self._check(slot)
        if slot not in self._data:
            raise BadSwapSlot(f"slot {slot} was never written")
        self._clock.charge(self._costs.disk_io_page_ns, "disk_io")
        self.reads += 1
        return self._data[slot]

    # -- accounting ---------------------------------------------------------------

    @property
    def slots_in_use(self) -> int:
        """Number of slots currently allocated."""
        return len(self._in_use)

    @property
    def slots_free(self) -> int:
        """Number of slots currently free."""
        return len(self._free)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SwapDevice({self.slots_in_use}/{self.num_slots} slots "
                f"in use, {self.writes}w/{self.reads}r)")
