"""DMA engine: bus-master access to physical memory.

The DMA engine is how the NIC (and step 5 of the paper's locktest
experiment, where the Kernel Agent "writes a certain value to the first
page of the block using the physical address obtained during the
registration ... simulating a DMA operation of the NIC") touches memory.

Crucially it addresses memory **only by physical address** and performs
**no validity checks beyond "is this installed RAM"** — exactly like real
bus-master hardware.  If the kernel has moved a page, the DMA engine
happily reads/writes the orphaned frame.  That silent success is the bug
the paper demonstrates; the simulator must not be "helpful" here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.events import ATOMIC_RMW, DMA_BEGIN, DMA_END
from repro.errors import DMAFault
from repro.hw.physmem import PAGE_SIZE, PhysicalMemory
from repro.obs.metrics import SIZE_BUCKETS
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.faults import FaultPlan


class DMAEngine:
    """Bus-master engine bound to one :class:`PhysicalMemory`.

    Transfers may span frame boundaries; the engine splits them into
    per-frame bursts internally (physical memory is contiguous from the
    bus's point of view, but :class:`PhysicalMemory` enforces per-frame
    spans).
    """

    def __init__(self, phys: PhysicalMemory, clock: SimClock,
                 costs: CostModel, trace: Trace | None = None,
                 name: str = "dma", obs=None, events=None) -> None:
        self._phys = phys
        self._clock = clock
        self._costs = costs
        self._trace = trace
        self._obs = obs
        #: analysis EventHub for DMA_BEGIN/DMA_END windows (optional)
        self._events = events
        self.name = name
        self.fault_plan: "FaultPlan | None" = None
        #: merge physically-adjacent gather/scatter segments into single
        #: bursts (the fast path); False restores the per-segment legacy
        #: behaviour for A/B benchmarking
        self.coalesce = True
        self.bytes_read = 0
        self.bytes_written = 0
        self.bursts_issued = 0        #: coalesced bursts on the fast path
        self.faults_injected = 0

    # -- scatter helpers ----------------------------------------------------

    @staticmethod
    def _bursts(phys_addr: int, length: int):
        """Yield ``(frame, offset, n)`` bursts covering the flat span."""
        remaining = length
        addr = phys_addr
        while remaining > 0:
            frame, offset = PhysicalMemory.split_phys(addr)
            n = min(remaining, PAGE_SIZE - offset)
            yield frame, offset, n
            addr += n
            remaining -= n

    @staticmethod
    def coalesce_runs(segments: list[tuple[int, int]]
                      ) -> list[tuple[int, int]]:
        """Merge physically-adjacent ``(addr, length)`` segments into
        maximal runs — the bus sees one burst per contiguous span, not
        one per 4 KiB page."""
        runs: list[list[int]] = []
        for addr, length in segments:
            if length <= 0:
                continue
            if runs and runs[-1][0] + runs[-1][1] == addr:
                runs[-1][1] += length
            else:
                runs.append([addr, length])
        return [(addr, length) for addr, length in runs]

    def _charge_bursts(self, nruns: int, total: int) -> None:
        """Charge one engine setup, per-extra-burst re-arm, and the wire
        bytes for a coalesced transfer."""
        costs = self._costs
        self._clock.charge(costs.dma_setup_ns, "dma")
        if nruns > 1:
            self._clock.charge((nruns - 1) * costs.dma_burst_ns, "dma")
        self._clock.charge(costs.dma_ns(total), "dma")
        self.bursts_issued += nruns
        obs = self._obs
        if obs is not None and obs.enabled:
            metrics = obs.metrics
            metrics.counter("hw.dma.bursts").inc(nruns)
            metrics.counter("hw.dma.transfers").inc()
            metrics.histogram("hw.dma.burst_bytes",
                              buckets=SIZE_BUCKETS).observe(
                                  total // nruns if nruns else total)
            metrics.histogram("hw.dma.transfer_bytes",
                              buckets=SIZE_BUCKETS).observe(total)

    def _window_open(self, op: str, runs: list[tuple[int, int]]
                     ) -> tuple[tuple[int, int, int], ...] | None:
        """Open a sanitizer DMA window over the frames the transfer will
        touch; returns the byte-precise ``(frame, offset, n)`` span tuple
        to pass to :meth:`_window_close`, or None when nobody is
        listening (the common case — one attribute load and one
        branch)."""
        events = self._events
        if events is None or not events.active:
            return None
        spans = tuple((frame, offset, n) for addr, length in runs
                      for frame, offset, n in self._bursts(addr, length))
        frames = tuple(frame for frame, _offset, _n in spans)
        events.emit(DMA_BEGIN, frames=frames, op=op, engine=self.name,
                    spans=spans)
        return spans

    def _window_close(self, op: str,
                      spans: tuple[tuple[int, int, int], ...] | None
                      ) -> None:
        if spans is not None:
            frames = tuple(frame for frame, _offset, _n in spans)
            # Guarded by proxy: spans is only non-None when the hub was
            # active at window open, and DMA_END must pair with its
            # DMA_BEGIN even if the hub deactivated mid-window.
            self._events.emit(  # repro-lint: allow(hub-emit-unguarded)
                DMA_END, frames=frames, op=op,
                engine=self.name, spans=spans)

    def _maybe_fault(self, op: str, phys_addr: int, length: int) -> None:
        """Raise an injected :class:`DMAFault` when the plan says so —
        the simulator's stand-in for a PCI abort or parity error."""
        if self.fault_plan is not None and self.fault_plan.should_fail_dma():
            self.faults_injected += 1
            if self._trace is not None:
                self._trace.emit("dma_fault_injected", engine=self.name,
                                 op=op, phys_addr=phys_addr, length=length)
            raise DMAFault(
                f"{self.name}: injected fault during {op} of {length} "
                f"bytes at {phys_addr:#x}")

    # -- transfers -----------------------------------------------------------

    def read(self, phys_addr: int, length: int) -> bytes:
        """DMA-read ``length`` bytes starting at flat ``phys_addr``."""
        self._maybe_fault("read", phys_addr, length)
        window = self._window_open("read", [(phys_addr, length)])
        try:
            self._clock.charge(self._costs.dma_setup_ns, "dma")
            self._clock.charge(self._costs.dma_ns(length), "dma")
            out = bytearray()
            for frame, offset, n in self._bursts(phys_addr, length):
                out += self._phys.read(frame, offset, n)
        finally:
            self._window_close("read", window)
        self.bytes_read += length
        if self._trace is not None:
            self._trace.emit("dma_read", engine=self.name,
                            phys_addr=phys_addr, length=length)
        return bytes(out)

    def write(self, phys_addr: int, data: bytes) -> None:
        """DMA-write ``data`` starting at flat ``phys_addr``."""
        self._maybe_fault("write", phys_addr, len(data))
        window = self._window_open("write", [(phys_addr, len(data))])
        try:
            self._clock.charge(self._costs.dma_setup_ns, "dma")
            self._clock.charge(self._costs.dma_ns(len(data)), "dma")
            pos = 0
            for frame, offset, n in self._bursts(phys_addr, len(data)):
                self._phys.write(frame, offset, data[pos:pos + n])
                pos += n
        finally:
            self._window_close("write", window)
        self.bytes_written += len(data)
        if self._trace is not None:
            self._trace.emit("dma_write", engine=self.name,
                            phys_addr=phys_addr, length=len(data))

    def read_gather(self, segments: list[tuple[int, int]]) -> bytes:
        """Gather-read: concatenate reads of ``(phys_addr, length)``
        segments — how the NIC walks a multi-page TPT translation.

        On the fast path adjacent segments are merged into single bursts
        and the payload is assembled through iovec reads with no
        per-segment intermediate ``bytes``.
        """
        if not self.coalesce:
            return b"".join(self.read(addr, length)
                            for addr, length in segments)
        runs = self.coalesce_runs(segments)
        total = sum(length for _, length in runs)
        first = runs[0][0] if runs else 0
        self._maybe_fault("read_gather", first, total)
        window = self._window_open("read_gather", runs)
        try:
            self._charge_bursts(len(runs), total)
            out = self._phys.read_iovec(runs) if runs else b""
        finally:
            self._window_close("read_gather", window)
        self.bytes_read += total
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.metrics.counter("hw.dma.bytes_read").inc(total)
        if self._trace is not None:
            self._trace.emit("dma_read", engine=self.name, phys_addr=first,
                             length=total, bursts=len(runs))
        return out

    def write_scatter(self, segments: list[tuple[int, int]],
                      data: bytes) -> None:
        """Scatter-write ``data`` across ``(phys_addr, length)`` segments.

        The segment lengths must sum to ``len(data)``.  On the fast path
        adjacent segments are merged into single bursts and ``data`` is
        consumed through a memoryview, copy-free.
        """
        total = sum(length for _, length in segments)
        if total != len(data):
            raise ValueError(
                f"scatter list covers {total} bytes, data is {len(data)}")
        if not self.coalesce:
            pos = 0
            for addr, length in segments:
                self.write(addr, data[pos:pos + length])
                pos += length
            return
        runs = self.coalesce_runs(segments)
        first = runs[0][0] if runs else 0
        self._maybe_fault("write_scatter", first, total)
        window = self._window_open("write_scatter", runs)
        try:
            self._charge_bursts(len(runs), total)
            if runs:
                self._phys.write_iovec(runs, data)
        finally:
            self._window_close("write_scatter", window)
        self.bytes_written += total
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.metrics.counter("hw.dma.bytes_written").inc(total)
        if self._trace is not None:
            self._trace.emit("dma_write", engine=self.name, phys_addr=first,
                             length=total, bursts=len(runs))

    def atomic_rmw(self, phys_addr: int, fn) -> int:
        """Atomically read-modify-write the 8-byte word at ``phys_addr``.

        ``fn`` maps the old 64-bit value to the new one (the result is
        masked to 64 bits).  Returns the *original* value.  The word must
        be naturally aligned — an 8-byte-aligned word never straddles a
        frame, so the RMW is a single-frame operation.  Like every other
        engine entry point this trusts the physical address; callers
        (the NIC) validate translation, alignment, and pinning first.
        """
        length = 8
        frame, offset = PhysicalMemory.split_phys(phys_addr)
        if offset % length:
            raise DMAFault(
                f"{self.name}: atomic RMW at {phys_addr:#x} is not "
                f"{length}-byte aligned")
        self._maybe_fault("atomic", phys_addr, length)
        events = self._events
        window = self._window_open("atomic", [(phys_addr, length)])
        if events is not None and events.active:
            events.emit(ATOMIC_RMW, frame=frame, offset=offset,
                        engine=self.name)
        try:
            self._clock.charge(self._costs.dma_setup_ns, "dma")
            self._clock.charge(self._costs.atomic_rmw_ns, "dma")
            old = int.from_bytes(self._phys.read(frame, offset, length),
                                 "little")
            new = fn(old) & 0xFFFF_FFFF_FFFF_FFFF
            self._phys.write(frame, offset, new.to_bytes(length, "little"))
        finally:
            self._window_close("atomic", window)
        self.bytes_read += length
        self.bytes_written += length
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.metrics.counter("hw.dma.atomics").inc()
        if self._trace is not None:
            self._trace.emit("dma_atomic", engine=self.name,
                             phys_addr=phys_addr, old=old, new=new)
        return old
