"""Physical memory: an array of byte-addressable page frames.

This is the lowest layer of the simulation.  It knows nothing about
processes, page tables, or pinning — it is "the RAM chips".  Both the CPU
(through the kernel's page tables) and the NIC (through physical addresses
in its TPT) read and write here, which is what makes TPT staleness
*observable*: a DMA write through a stale frame number lands in RAM that
no page table maps any more.

Addresses are ``(frame_number, offset)`` pairs or flat byte addresses
``frame_number * PAGE_SIZE + offset``; both forms are accepted.
"""

from __future__ import annotations

from repro.errors import BadPhysicalAddress

#: Page size of the simulated machine — 4 KiB, the x86 page size the paper
#: assumes throughout ("4kB since the primary target system is a x86 one").
PAGE_SIZE = 4096


class PhysicalMemory:
    """``num_frames`` page frames of :data:`PAGE_SIZE` bytes each.

    Storage is one contiguous :class:`bytearray`; frame ``i`` occupies
    bytes ``[i*PAGE_SIZE, (i+1)*PAGE_SIZE)``.  No access policy lives
    here — policy is the kernel's and the NIC's job.
    """

    def __init__(self, num_frames: int) -> None:
        if num_frames <= 0:
            raise ValueError("need at least one page frame")
        self.num_frames = num_frames
        self._mem = bytearray(num_frames * PAGE_SIZE)

    # -- validation ---------------------------------------------------------

    def _check_frame(self, frame: int) -> None:
        if not (0 <= frame < self.num_frames):
            raise BadPhysicalAddress(
                f"frame {frame} outside installed memory "
                f"(0..{self.num_frames - 1})")

    def _check_span(self, frame: int, offset: int, length: int) -> None:
        self._check_frame(frame)
        if length < 0:
            raise BadPhysicalAddress(f"negative length {length}")
        if not (0 <= offset <= PAGE_SIZE):
            raise BadPhysicalAddress(f"offset {offset} outside page")
        if offset + length > PAGE_SIZE:
            raise BadPhysicalAddress(
                f"span [{offset}, {offset + length}) crosses the frame "
                f"boundary; physical spans must stay within one frame")

    # -- whole-frame access ---------------------------------------------------

    def read_frame(self, frame: int) -> bytes:
        """Return the full contents of ``frame``."""
        self._check_frame(frame)
        base = frame * PAGE_SIZE
        return bytes(self._mem[base:base + PAGE_SIZE])

    def write_frame(self, frame: int, data: bytes) -> None:
        """Overwrite the full contents of ``frame``.

        ``data`` shorter than a page is zero-padded; longer is an error.
        """
        self._check_frame(frame)
        if len(data) > PAGE_SIZE:
            raise BadPhysicalAddress(
                f"{len(data)} bytes do not fit in one {PAGE_SIZE}-byte frame")
        base = frame * PAGE_SIZE
        self._mem[base:base + len(data)] = data
        if len(data) < PAGE_SIZE:
            self._mem[base + len(data):base + PAGE_SIZE] = \
                bytes(PAGE_SIZE - len(data))

    def zero_frame(self, frame: int) -> None:
        """Clear ``frame`` to all-zero bytes (demand-zero fault path)."""
        self._check_frame(frame)
        base = frame * PAGE_SIZE
        self._mem[base:base + PAGE_SIZE] = bytes(PAGE_SIZE)

    def copy_frame(self, src: int, dst: int) -> None:
        """Copy frame ``src`` over frame ``dst`` (COW fault path)."""
        self._check_frame(src)
        self._check_frame(dst)
        sbase = src * PAGE_SIZE
        dbase = dst * PAGE_SIZE
        self._mem[dbase:dbase + PAGE_SIZE] = self._mem[sbase:sbase + PAGE_SIZE]

    # -- sub-frame access ------------------------------------------------------

    def read(self, frame: int, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``(frame, offset)``; must not cross the
        frame boundary."""
        self._check_span(frame, offset, length)
        base = frame * PAGE_SIZE + offset
        return bytes(self._mem[base:base + length])

    def write(self, frame: int, offset: int, data: bytes) -> None:
        """Write ``data`` at ``(frame, offset)``; must not cross the frame
        boundary."""
        self._check_span(frame, offset, len(data))
        base = frame * PAGE_SIZE + offset
        self._mem[base:base + len(data)] = data

    # -- iovec access (zero-copy DMA fast path) ------------------------------

    def _check_flat_span(self, addr: int, length: int) -> None:
        """Validate a flat physical span; unlike :meth:`_check_span` it
        may cross frame boundaries (physical memory is contiguous from
        the bus's point of view)."""
        if length < 0:
            raise BadPhysicalAddress(f"negative length {length}")
        if addr < 0 or addr + length > self.size_bytes:
            raise BadPhysicalAddress(
                f"span [{addr:#x}, {addr + length:#x}) outside installed "
                f"memory (0..{self.size_bytes:#x})")

    def view(self, addr: int, length: int) -> memoryview:
        """A read-only window onto ``[addr, addr+length)`` — no copy."""
        self._check_flat_span(addr, length)
        return memoryview(self._mem)[addr:addr + length].toreadonly()

    def read_iovec(self, iovec: list[tuple[int, int]]) -> bytes:
        """Gather-read ``(addr, length)`` spans into one ``bytes``.

        Spans may cross frame boundaries.  The single-span case (a fully
        coalesced DMA burst) costs exactly one copy; multi-span gathers
        assemble through a preallocated buffer with no per-span
        intermediate ``bytes`` objects.
        """
        if len(iovec) == 1:
            addr, length = iovec[0]
            self._check_flat_span(addr, length)
            return bytes(memoryview(self._mem)[addr:addr + length])
        total = sum(length for _, length in iovec)
        out = bytearray(total)
        mv_out = memoryview(out)
        mv_mem = memoryview(self._mem)
        pos = 0
        for addr, length in iovec:
            self._check_flat_span(addr, length)
            mv_out[pos:pos + length] = mv_mem[addr:addr + length]
            pos += length
        return bytes(out)

    def write_iovec(self, iovec: list[tuple[int, int]], data) -> None:
        """Scatter-write ``data`` across ``(addr, length)`` spans.

        ``data`` may be any buffer (bytes, bytearray, memoryview); it is
        consumed through a memoryview, so no per-span slices are
        materialized.  Span lengths must sum to ``len(data)``.
        """
        mv = memoryview(data)
        total = sum(length for _, length in iovec)
        if total != len(mv):
            raise BadPhysicalAddress(
                f"iovec covers {total} bytes, data is {len(mv)}")
        mv_mem = memoryview(self._mem)
        pos = 0
        for addr, length in iovec:
            self._check_flat_span(addr, length)
            mv_mem[addr:addr + length] = mv[pos:pos + length]
            pos += length

    # -- flat addressing (DMA engines think in flat physical bytes) ----------

    @staticmethod
    def split_phys(phys_addr: int) -> tuple[int, int]:
        """Split a flat physical byte address into ``(frame, offset)``."""
        return phys_addr // PAGE_SIZE, phys_addr % PAGE_SIZE

    @staticmethod
    def join_phys(frame: int, offset: int = 0) -> int:
        """Join ``(frame, offset)`` into a flat physical byte address."""
        return frame * PAGE_SIZE + offset

    @property
    def size_bytes(self) -> int:
        """Total installed memory in bytes."""
        return self.num_frames * PAGE_SIZE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PhysicalMemory({self.num_frames} frames, "
                f"{self.size_bytes // 1024} KiB)")
