"""Simulated hardware: physical memory, swap device, DMA engine."""

from repro.hw.physmem import PhysicalMemory, PAGE_SIZE
from repro.hw.swapdev import SwapDevice
from repro.hw.dma import DMAEngine

__all__ = ["PhysicalMemory", "PAGE_SIZE", "SwapDevice", "DMAEngine"]
