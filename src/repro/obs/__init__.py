"""Observability: metrics, sim-time spans, and exporters.

The paper's whole argument rests on *seeing* what the kernel and the NIC
actually did — E1 catches the refcount backend's failure by finding a
``swap_out`` of a registered page in the event trace.  This package is
the quantitative counterpart of that trace: per-subsystem counters,
gauges, and sim-ns latency histograms (the style U-Net and VMMC-2 used
to attribute microseconds to doorbell, DMA, and retransmit paths), plus
nestable simulated-time spans exportable as Chrome ``chrome://tracing``
JSON.

Everything hangs off one :class:`Observability` facade per kernel (or
one shared across a cluster, like the trace).  Observability is
**disabled by default** and the disabled path is near-free: every
instrumentation site in the hot path guards with a single
``if obs.enabled:`` branch, so the fast-path wins of the data plane are
preserved (benchmark E15 asserts this).

Usage::

    machine.obs.enable()
    ... run a workload ...
    snap = machine.obs.snapshot()        # one dict with everything
    chrome = machine.obs.export_chrome_trace()   # open in chrome://tracing
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, NS_BUCKETS, SIZE_BUCKETS,
)
from repro.obs.spans import SpanRecord, SpanRecorder

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NS_BUCKETS", "SIZE_BUCKETS",
    "SpanRecord", "SpanRecorder",
    "Observability",
]


class Observability:
    """One kernel's (or cluster's) metrics registry + span recorder.

    ``enabled`` gates every emit.  Hot call sites read it once and skip
    all observability work when False — the shipped default — so the
    cost of carrying the instrumentation is one attribute load and one
    branch per site.  :meth:`enable`/:meth:`disable` flip it at runtime;
    metrics accumulated while enabled survive a disable (they are only
    dropped by :meth:`reset`).
    """

    def __init__(self, clock, enabled: bool = False,
                 span_maxlen: int = 65536) -> None:
        self.clock = clock
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(clock, maxlen=span_maxlen)
        #: snapshot-time collectors (see :meth:`add_collector`)
        self._collectors: list = []

    # -- collectors --------------------------------------------------------

    def add_collector(self, collector) -> None:
        """Register a snapshot-time collector.

        A collector is called with this facade right before every
        :meth:`snapshot`, so components that keep their own counters
        (the pin-safety sanitizer, for one) can fold them into the
        metrics registry lazily instead of paying per-event metric
        updates on the hot path."""
        self._collectors.append(collector)

    def remove_collector(self, collector) -> None:
        """Deregister a collector added with :meth:`add_collector`
        (no-op if absent)."""
        if collector in self._collectors:
            self._collectors.remove(collector)

    # -- switching ---------------------------------------------------------

    def enable(self) -> "Observability":
        """Turn emission on; returns self for chaining."""
        self.enabled = True
        return self

    def disable(self) -> "Observability":
        """Turn emission off (accumulated data is kept)."""
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every metric and span recorded so far."""
        self.metrics.reset()
        self.spans.reset()

    # -- emission (all no-ops while disabled) -------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.metrics.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: tuple = NS_BUCKETS) -> None:
        """Observe ``value`` into histogram ``name`` (no-op while
        disabled).  ``buckets`` only applies on first creation."""
        if not self.enabled:
            return
        self.metrics.histogram(name, buckets=buckets).observe(value)

    # metric accessors (always live, so tests can read regardless of state)
    def counter(self, name: str) -> Counter:
        """Get-or-create counter ``name``."""
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create gauge ``name``."""
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets: tuple = NS_BUCKETS) -> Histogram:
        """Get-or-create histogram ``name``."""
        return self.metrics.histogram(name, buckets=buckets)

    def span(self, name: str, **args):
        """Context manager timing a sim-time span (cheap shared no-op
        while disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return self.spans.span(name, **args)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Roll everything into one deterministic dict."""
        for collector in list(self._collectors):
            collector(self)
        return {
            "enabled": self.enabled,
            "now_ns": self.clock.now_ns,
            "metrics": self.metrics.snapshot(),
            "spans": self.spans.summary(),
        }

    def export_chrome_trace(self) -> dict:
        """The recorded spans as a ``chrome://tracing`` JSON object."""
        return self.spans.to_chrome()

    def export_spans_jsonl(self) -> str:
        """The recorded spans as JSON Lines (one span per line)."""
        return self.spans.to_jsonl()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (f"Observability({state}, {len(self.metrics)} metrics, "
                f"{len(self.spans)} spans)")


class _NullSpan:
    """Shared no-op context manager returned by ``span`` while disabled
    (no per-call allocation on the disabled path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()
