"""Metric primitives: counters, gauges, histograms, and their registry.

Names are hierarchical dotted paths (``via.nic.retransmits``,
``hw.dma.burst_bytes``) so a snapshot groups naturally by subsystem.
Histograms use fixed upper-bound buckets — the defaults cover simulated
nanoseconds from sub-microsecond doorbell writes to multi-millisecond
page-ins (:data:`NS_BUCKETS`) and transfer sizes from cache lines to
multi-megabyte RDMA (:data:`SIZE_BUCKETS`).

All state is plain integers/floats updated in O(1); a snapshot is the
only place anything is formatted.  Determinism: snapshots sort by metric
name and contain no host time, so the same seeded workload produces the
same snapshot byte for byte.
"""

from __future__ import annotations

import bisect
from typing import Iterator

#: Default sim-ns latency buckets: 100 ns .. 1 s, roughly 1-3-10 spaced.
NS_BUCKETS: tuple[int, ...] = (
    100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000,
    1_000_000, 3_000_000, 10_000_000, 100_000_000, 1_000_000_000,
)

#: Default size buckets (bytes): one cache line up to 4 MiB.
SIZE_BUCKETS: tuple[int, ...] = (
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
)


class Metric:
    """Base class: a named observable."""

    kind = "metric"

    def __init__(self, name: str) -> None:
        self.name = name

    def snapshot(self):
        """This metric's current value as a JSON-safe object."""
        raise NotImplementedError

    def reset(self) -> None:
        """Zero the metric in place."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.snapshot()!r})"


class Counter(Metric):
    """A monotonically increasing integer."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative — counters only go up)."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def snapshot(self) -> int:
        return self.value

    def reset(self) -> None:
        self.value = 0


class Gauge(Metric):
    """A point-in-time value; remembers its extremes."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value: float = 0
        self.max_value: float | None = None
        self.min_value: float | None = None

    def set(self, value: float) -> None:
        """Set the current value, updating the high/low water marks."""
        self.value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if self.min_value is None or value < self.min_value:
            self.min_value = value

    def inc(self, n: float = 1) -> None:
        """Adjust the current value by ``+n``."""
        self.set(self.value + n)

    def dec(self, n: float = 1) -> None:
        """Adjust the current value by ``-n``."""
        self.set(self.value - n)

    def snapshot(self) -> dict:
        return {"value": self.value, "max": self.max_value,
                "min": self.min_value}

    def reset(self) -> None:
        self.value = 0
        self.max_value = None
        self.min_value = None


class Histogram(Metric):
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are ascending inclusive upper bounds; one implicit
    overflow bucket catches everything larger.  ``observe`` is a bisect
    plus three integer updates — cheap enough for per-packet use.
    """

    kind = "histogram"

    def __init__(self, name: str,
                 buckets: tuple = NS_BUCKETS) -> None:
        super().__init__(name)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(
                f"histogram {name}: buckets must be ascending, "
                f"got {buckets!r}")
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum: float = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Upper bound of the bucket holding the ``q``-quantile
        observation (None when empty; ``inf`` if it landed in the
        overflow bucket)."""
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= rank and n:
                return (self.buckets[i] if i < len(self.buckets)
                        else float("inf"))
        return float("inf")

    def snapshot(self) -> dict:
        labels = [f"le_{b}" for b in self.buckets] + ["inf"]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": dict(zip(labels, self.counts)),
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None


class MetricsRegistry:
    """Get-or-create store of metrics keyed by dotted name.

    A name is permanently bound to its first-created kind — asking for
    ``counter("x")`` after ``gauge("x")`` is a programming error and
    raises, so two subsystems cannot silently share one name with
    different semantics.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, cls, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, **kwargs)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already exists as {metric.kind}, "
                f"requested {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        """Get-or-create a :class:`Counter`."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create a :class:`Gauge`."""
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: tuple = NS_BUCKETS) -> Histogram:
        """Get-or-create a :class:`Histogram` (``buckets`` is only used
        on first creation)."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, buckets=buckets)
        elif type(metric) is not Histogram:
            raise TypeError(
                f"metric {name!r} already exists as {metric.kind}, "
                f"requested histogram")
        return metric

    def get(self, name: str) -> Metric | None:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def snapshot(self) -> dict:
        """``{name: value}`` for every metric, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def reset(self) -> None:
        """Zero every metric in place (names and kinds survive)."""
        for metric in self._metrics.values():
            metric.reset()

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
