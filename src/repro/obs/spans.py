"""Sim-time spans: enter/exit pairs charged against the simulated clock.

A span brackets a region of work ("one rendezvous transfer", "one
reclaim run") and records how much *simulated* time elapsed inside it —
the same timeline every cost in the simulator is charged to, so spans
compose exactly with the benchmarks' sim-ns numbers.  Spans nest: the
recorder keeps an enter stack, and each finished span remembers its
depth and its parent, so an exported trace shows the doorbell write
inside the transfer inside the barrier.

Two export formats:

* :meth:`SpanRecorder.to_chrome` — the Chrome trace-event format
  (open ``chrome://tracing`` or https://ui.perfetto.dev and load the
  JSON); complete events (``"ph": "X"``) with microsecond timestamps.
* :meth:`SpanRecorder.to_jsonl` — one JSON object per line, for
  ``jq``-style processing and the benchmark harness.

Storage is a bounded ring like the event trace; evictions are counted
in ``dropped`` so an exporter can say when the window is partial.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Iterator


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    start_ns: int
    end_ns: int
    depth: int                 #: nesting level at enter (0 = top level)
    index: int                 #: creation order (stable tie-break)
    parent: int | None = None  #: index of the enclosing span, if any
    args: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_dict(self) -> dict:
        """JSON-safe representation (used by the JSONL export)."""
        return {"name": self.name, "start_ns": self.start_ns,
                "end_ns": self.end_ns, "duration_ns": self.duration_ns,
                "depth": self.depth, "index": self.index,
                "parent": self.parent, "args": self.args}


class _OpenSpan:
    """A span between enter and exit (internal)."""

    __slots__ = ("name", "start_ns", "depth", "index", "parent", "args")

    def __init__(self, name: str, start_ns: int, depth: int, index: int,
                 parent: int | None, args: dict) -> None:
        self.name = name
        self.start_ns = start_ns
        self.depth = depth
        self.index = index
        self.parent = parent
        self.args = args


class SpanRecorder:
    """Bounded store of finished :class:`SpanRecord`\\ s plus the enter
    stack that makes them nest."""

    def __init__(self, clock, maxlen: int = 65536) -> None:
        self._clock = clock
        self._spans: Deque[SpanRecord] = deque(maxlen=maxlen)
        self._stack: list[_OpenSpan] = []
        self._next_index = 0
        self.dropped = 0          #: finished spans evicted by the ring

    # -- recording ----------------------------------------------------------

    def enter(self, name: str, **args) -> _OpenSpan:
        """Open a span now; pair with :meth:`exit`."""
        parent = self._stack[-1].index if self._stack else None
        span = _OpenSpan(name, self._clock.now_ns, len(self._stack),
                         self._next_index, parent, args)
        self._next_index += 1
        self._stack.append(span)
        return span

    def exit(self, span: _OpenSpan) -> SpanRecord:
        """Close ``span`` (and any still-open children it encloses —
        mismatched exits unwind like exceptions do)."""
        while self._stack:
            top = self._stack.pop()
            record = self._finish(top)
            if top is span:
                return record
        raise ValueError(f"span {span.name!r} is not open")

    def _finish(self, span: _OpenSpan) -> SpanRecord:
        record = SpanRecord(span.name, span.start_ns, self._clock.now_ns,
                            span.depth, span.index, span.parent, span.args)
        if len(self._spans) == self._spans.maxlen:
            self.dropped += 1
        self._spans.append(record)
        return record

    @contextmanager
    def span(self, name: str, **args) -> Iterator[_OpenSpan]:
        """Context-manager form of enter/exit."""
        open_span = self.enter(name, **args)
        try:
            yield open_span
        finally:
            self.exit(open_span)

    def reset(self) -> None:
        """Drop all finished spans (open spans stay open)."""
        self._spans.clear()
        self.dropped = 0

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._spans)

    def of_name(self, name: str) -> list[SpanRecord]:
        """All retained spans called ``name``."""
        return [s for s in self._spans if s.name == name]

    @property
    def open_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def summary(self) -> dict:
        """Per-name aggregate: count and total/mean sim-ns, plus ring
        state — the piece :meth:`Observability.snapshot` embeds."""
        by_name: dict[str, dict] = {}
        for s in self._spans:
            agg = by_name.setdefault(s.name, {"count": 0, "total_ns": 0})
            agg["count"] += 1
            agg["total_ns"] += s.duration_ns
        for agg in by_name.values():
            agg["mean_ns"] = agg["total_ns"] / agg["count"]
        return {"recorded": len(self._spans), "dropped": self.dropped,
                "open": len(self._stack),
                "by_name": dict(sorted(by_name.items()))}

    # -- exporters ----------------------------------------------------------

    def to_chrome(self) -> dict:
        """Chrome trace-event JSON (complete events, µs timestamps).

        All spans land on one pid/tid; the viewer nests them by
        timestamp containment, which is exactly how they were recorded.
        """
        events = []
        for s in self._spans:
            events.append({
                "name": s.name,
                "ph": "X",
                "ts": s.start_ns / 1000.0,
                "dur": s.duration_ns / 1000.0,
                "pid": 0,
                "tid": 0,
                "args": dict(s.args, depth=s.depth),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"clock": "sim-ns", "dropped": self.dropped}}

    def to_jsonl(self) -> str:
        """One JSON object per finished span, newline-separated."""
        return "\n".join(json.dumps(s.to_dict(), sort_keys=True)
                         for s in self._spans)
