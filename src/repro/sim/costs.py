"""Cost model: simulated nanoseconds charged per primitive operation.

Default magnitudes are calibrated to the hardware era of the paper
(450 MHz Pentium III, 33 MHz/32-bit PCI, IDE-class disk) and to the
latency numbers quoted across the SFB393/01-12 collection:

* SCI remote write (PIO) software latency ≈ 2.3 µs  → ``pio_word_ns``
  sized so a small store lands in that range.
* Giganet cLAN VIA send/recv latency ≈ 65 µs at the MPI level, ≈ 8 µs
  hardware → descriptor/doorbell/DMA-setup costs in the µs range.
* A syscall (the paper's reason for avoiding kernel-mediated DMA)
  ≈ 1–2 µs.
* A major fault (page-in from disk) is *milliseconds* — the "expensive
  page-in operations" the VIA pinning requirement avoids.

Every figure is a dataclass field so ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Per-operation simulated costs, in nanoseconds."""

    # -- CPU / syscall ------------------------------------------------------
    syscall_ns: int = 1_500          #: user→kernel→user transition
    capability_check_ns: int = 50    #: uid / CAP_IPC_LOCK check
    pagetable_walk_ns: int = 120     #: resolve one PTE in software
    vma_lookup_ns: int = 180         #: find_vma + checks
    vma_split_ns: int = 600          #: split/merge a VM area (mlock path)
    memcpy_per_byte_ns: float = 3.0   #: CPU copy (≈330 MB/s, PIII-era)

    # -- memory management --------------------------------------------------
    minor_fault_ns: int = 2_000      #: demand-zero / COW fault service
    major_fault_base_ns: int = 50_000    #: fault needing disk, CPU part
    disk_io_page_ns: int = 4_000_000     #: one 4 KiB page to/from swap (4 ms)
    frame_alloc_ns: int = 300        #: get_free_pages fast path
    reclaim_scan_page_ns: int = 150  #: clock-algorithm per-page scan step
    page_lock_ns: int = 60           #: set/clear a page flag or pin count
    kiobuf_setup_ns: int = 900       #: allocate + init a kiobuf head
    mlock_range_ns: int = 800        #: do_mlock fixed overhead per call

    # -- VIA / NIC -----------------------------------------------------------
    tpt_update_ns: int = 400         #: write one TPT entry over PCI
    #: translation served page-by-page (legacy TPT walk, one entry fetch
    #: per 4 KiB page of the span)
    tpt_translate_page_ns: int = 50
    #: translation served from coalesced extents (one fetch per
    #: physically-contiguous run, however many pages it merges)
    tpt_translate_extent_ns: int = 80
    #: translation served from the NIC's translation cache (one lookup)
    tpt_cache_hit_ns: int = 30
    #: per-burst cost of re-engaging the DMA engine inside a gather /
    #: scatter (the first burst pays the full ``dma_setup_ns``)
    dma_burst_ns: int = 300
    doorbell_ring_ns: int = 700      #: PIO write to a doorbell page
    descriptor_build_ns: int = 500   #: CPU prepares a descriptor
    descriptor_fetch_ns: int = 2_500  #: NIC DMA-reads descriptor from memory
    dma_setup_ns: int = 1_200        #: NIC engages its DMA engine
    #: Per-byte DMA/PCI cost.  One end-to-end transfer charges this three
    #: times (local gather, wire, remote scatter), so 3.7 ns/B yields the
    #: ≈90 MB/s effective RDMA bandwidth of cLAN-class hardware.
    dma_per_byte_ns: float = 3.7
    pio_word_ns: int = 550           #: CPU store into remote-mapped memory
    #: streaming PIO (write-combined CPU stores): ≈82 MB/s, the SCI
    #: shared-memory figure of the companion papers
    pio_stream_per_byte_ns: float = 12.0
    nic_wire_latency_ns: int = 4_000  #: fabric propagation per packet
    completion_post_ns: int = 800    #: NIC writes completion, CPU polls it
    #: responder-side read-modify-write of one 8-byte word (the NIC's
    #: embedded atomic unit; charged once per remote atomic served)
    atomic_rmw_ns: int = 600
    #: how long the atomic unit holds the target word after an RMW —
    #: a second atomic to the *same* word arriving inside the window
    #: stalls until it closes (per-word serialization)
    atomic_contention_window_ns: int = 2_500
    #: retransmission timer of a RELIABLE VI: initial expiry, exponential
    #: backoff factor, and the cap the backoff saturates at
    retransmit_timeout_ns: int = 20_000
    retransmit_backoff: float = 2.0
    retransmit_timeout_max_ns: int = 640_000
    #: blocking-wait completion: kernel trap + reschedule ("reawakening a
    #: process is, of course, more expensive than polling on a local
    #: memory location")
    reschedule_ns: int = 8_000
    #: fixed cost of one ODP fault-service round trip: NIC posts the
    #: fault request, the driver takes it, patches the TPT, rings the
    #: resume doorbell (the page-fault work itself is charged by the
    #: normal ``handle_fault`` path on top of this)
    odp_fault_service_base_ns: int = 12_000
    #: parking + unparking a DMA engine around a translation fault
    odp_suspend_resume_ns: int = 3_000
    #: invalidating one ODP TPT entry under pressure (PCI write + fence)
    odp_invalidate_page_ns: int = 500

    # -- misc ----------------------------------------------------------------
    extra: dict = field(default_factory=dict, compare=False)

    # -- derived helpers -----------------------------------------------------

    def memcpy_ns(self, nbytes: int) -> int:
        """CPU copy cost for ``nbytes``."""
        return int(self.memcpy_per_byte_ns * nbytes)

    def dma_ns(self, nbytes: int) -> int:
        """Wire/DMA transfer cost for ``nbytes`` (excluding setup)."""
        return int(self.dma_per_byte_ns * nbytes)

    def major_fault_ns(self) -> int:
        """Total cost of a fault that must read a page from swap."""
        return self.major_fault_base_ns + self.disk_io_page_ns

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with the named fields replaced (for ablations)."""
        return replace(self, **overrides)


#: Cost model with every charge zero — for pure-correctness tests that do
#: not care about time and want maximal speed.
FREE = CostModel(
    syscall_ns=0, capability_check_ns=0, pagetable_walk_ns=0,
    vma_lookup_ns=0, vma_split_ns=0, memcpy_per_byte_ns=0.0,
    minor_fault_ns=0, major_fault_base_ns=0, disk_io_page_ns=0,
    frame_alloc_ns=0, reclaim_scan_page_ns=0, page_lock_ns=0,
    kiobuf_setup_ns=0, mlock_range_ns=0, tpt_update_ns=0,
    tpt_translate_page_ns=0, tpt_translate_extent_ns=0, tpt_cache_hit_ns=0,
    dma_burst_ns=0,
    doorbell_ring_ns=0, descriptor_build_ns=0, descriptor_fetch_ns=0,
    dma_setup_ns=0, dma_per_byte_ns=0.0, pio_word_ns=0,
    pio_stream_per_byte_ns=0.0,
    nic_wire_latency_ns=0, completion_post_ns=0, reschedule_ns=0,
    retransmit_timeout_ns=0, retransmit_timeout_max_ns=0,
    atomic_rmw_ns=0, atomic_contention_window_ns=0,
    odp_fault_service_base_ns=0, odp_suspend_resume_ns=0,
    odp_invalidate_page_ns=0,
)
