"""Simulated-time accounting.

All timing the benchmarks report comes from :class:`SimClock`, a simple
monotonically increasing nanosecond counter that subsystems *charge* as
they perform work.  This keeps benchmark shapes deterministic and
host-independent: a registration of N pages always costs exactly
``N * (page_walk + tpt_update) + syscall`` simulated nanoseconds, so the
linear-in-pages shape the paper's evaluation depends on cannot be washed
out by interpreter noise.  (pytest-benchmark additionally measures real
host time of the whole simulation; see ``benchmarks/``.)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator


class SimClock:
    """A monotonically increasing simulated-time counter (nanoseconds).

    The clock also keeps per-category totals so experiments can report
    *where* time went (syscall overhead vs disk I/O vs DMA), which is how
    the paper argues about "expensive page-in operations during
    communication".
    """

    def __init__(self) -> None:
        self._now_ns: int = 0
        self._by_category: dict[str, int] = {}
        self._frozen = False
        #: time-watchers (periodic daemons: reaper, invariant watchdog)
        self._watchers: list[Callable[[int], None]] = []
        self._notifying = False

    # -- reading ----------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_ns / 1000.0

    def category_ns(self, category: str) -> int:
        """Total nanoseconds charged under ``category`` (0 if never used)."""
        return self._by_category.get(category, 0)

    def categories(self) -> dict[str, int]:
        """A copy of the per-category totals."""
        return dict(self._by_category)

    # -- charging ---------------------------------------------------------

    def charge(self, ns: int, category: str = "uncategorized") -> None:
        """Advance the clock by ``ns`` nanoseconds.

        ``ns`` must be non-negative; a zero charge is legal and records
        nothing.  While the clock is frozen (see :meth:`frozen`) charges
        are ignored — used by setup code that should not pollute
        measurements.
        """
        if ns < 0:
            raise ValueError(f"cannot charge negative time: {ns}")
        if self._frozen or ns == 0:
            return
        self._now_ns += ns
        self._by_category[category] = self._by_category.get(category, 0) + ns
        # Wake the time-watchers.  Work a watcher performs charges the
        # clock too, so notification is non-reentrant: a daemon's own
        # charges never recursively re-trigger the daemons.
        if self._watchers and not self._notifying:
            self._notifying = True
            try:
                for fn in tuple(self._watchers):
                    fn(self._now_ns)
            finally:
                self._notifying = False

    def subscribe(self, fn: Callable[[int], None]) -> Callable[[], None]:
        """Register a time-watcher called with ``now_ns`` after every
        (non-frozen, nonzero) charge; returns an unsubscribe callable.

        This is how the simulation models periodic kernel daemons: there
        is no scheduler, so anything that should happen "every N ms of
        simulated time" piggybacks on the clock advancing.
        """
        self._watchers.append(fn)

        def unsubscribe() -> None:
            try:
                self._watchers.remove(fn)
            except ValueError:
                pass
        return unsubscribe

    @contextmanager
    def frozen(self) -> Iterator[None]:
        """Context manager during which all charges are discarded."""
        prev = self._frozen
        self._frozen = True
        try:
            yield
        finally:
            self._frozen = prev

    # -- measurement helpers ----------------------------------------------

    @contextmanager
    def measure(self) -> Iterator["_Span"]:
        """Context manager yielding a span whose ``elapsed_ns`` is the
        simulated time consumed inside the block."""
        span = _Span(self)
        try:
            yield span
        finally:
            span.stop()

    def reset(self) -> None:
        """Zero the clock and all category totals."""
        self._now_ns = 0
        self._by_category.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now_ns}ns)"


class _Span:
    """Elapsed-simulated-time span produced by :meth:`SimClock.measure`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now_ns
        self._stop: int | None = None

    def stop(self) -> None:
        """Freeze the span at the current simulated time."""
        if self._stop is None:
            self._stop = self._clock.now_ns

    @property
    def elapsed_ns(self) -> int:
        end = self._stop if self._stop is not None else self._clock.now_ns
        return end - self._start

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / 1000.0
