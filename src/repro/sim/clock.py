"""Simulated-time accounting.

All timing the benchmarks report comes from :class:`SimClock`, a simple
monotonically increasing nanosecond counter that subsystems *charge* as
they perform work.  This keeps benchmark shapes deterministic and
host-independent: a registration of N pages always costs exactly
``N * (page_walk + tpt_update) + syscall`` simulated nanoseconds, so the
linear-in-pages shape the paper's evaluation depends on cannot be washed
out by interpreter noise.  (pytest-benchmark additionally measures real
host time of the whole simulation; see ``benchmarks/``.)

Periodic work (the orphan reaper, the invariant watchdog, fault timers)
rides on the clock through the **event calendar**: a lazy min-heap of
``(deadline_ns, seq, event)`` entries.  :meth:`SimClock.schedule_at` /
:meth:`SimClock.schedule_after` are O(log n); cancellation is O(1)
(events are tombstoned in place and dropped when they surface);
:meth:`SimClock.charge` pays a single O(1) heap peek when nothing is
due, instead of the old model's fan-out to every subscriber on every
charge.  Callbacks run *during* the charge that crosses their deadline,
so a single large charge may deliver ``now_ns`` well past the deadline —
periodic daemons are expected to fire once and realign their next
deadline from ``now_ns`` (catch-up semantics; see
``OrphanReaper._on_event``).

``subscribe()`` remains as a deprecated per-charge fan-out shim for
out-of-tree callers; in-tree code must use the calendar (enforced by the
``clock-subscribe`` repro-lint rule).

Two extension points exist for the analysis layer (``repro.analysis``):

* **Seeded tie-break permutation** — by default, same-deadline events
  dispatch FIFO (by schedule order).  :meth:`SimClock.set_tiebreak`
  installs a seed that permutes same-deadline ties deterministically
  (:func:`tiebreak_key`), which is how the schedule explorer
  (``repro.analysis.explore``) enumerates alternative legal schedules.
  ``set_tiebreak(None)`` is the identity: FIFO order is preserved
  exactly.
* **Calendar hooks** — :meth:`SimClock.add_calendar_hook` registers a
  :class:`CalendarHook` observing scheduling and dispatch
  (``scheduled``/``pass_begin``/``fire_begin``/``fire_end``), and
  :attr:`SimClock.current_firing` names the callback currently running.
  The happens-before race engine uses these to attribute events to
  execution contexts and to build calendar causality edges.  With no
  hooks installed the dispatch path pays one truthiness test per event.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Callable, Iterator

_MASK64 = (1 << 64) - 1


def tiebreak_key(seed: int, seq: int) -> int:
    """Deterministic 64-bit mix of ``(seed, seq)`` (splitmix64-style).

    Used as the secondary heap key for same-deadline calendar events
    when a tie-break seed is installed (:meth:`SimClock.set_tiebreak`):
    different seeds yield different — but fully reproducible —
    permutations of every tie group.  Pure function of its arguments, so
    the schedule explorer can *predict* the permutation a seed induces
    on a recorded tie group without re-running the simulation (the
    DPOR-lite pruning step relies on this).
    """
    x = (seq * 0x9E3779B97F4A7C15 + (seed + 1) * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


class CalendarHook:
    """Observer interface for the event calendar (all methods no-ops).

    Subclass and override what you need; install with
    :meth:`SimClock.add_calendar_hook`.  Hooks must not schedule or
    cancel events from ``fire_begin``/``fire_end`` — they observe.
    """

    def scheduled(self, event: "ScheduledEvent") -> None:
        """``event`` was just pushed onto the calendar."""

    def pass_begin(self) -> None:
        """A dispatch pass is starting (at least one event is due)."""

    def fire_begin(self, event: "ScheduledEvent") -> None:
        """``event``'s callback is about to run."""

    def fire_end(self, event: "ScheduledEvent") -> None:
        """``event``'s callback returned (or raised)."""


class ScheduledEvent:
    """Handle for one entry in the event calendar.

    Returned by :meth:`SimClock.schedule_at`; the only supported
    operations are :meth:`cancel` and reading :attr:`pending`.  Handles
    outlive :meth:`SimClock.reset`: a stale handle is simply no longer
    pending and its ``cancel()`` is a no-op.
    """

    __slots__ = ("deadline_ns", "seq", "fn", "name", "shard", "_fired",
                 "_cancelled")

    def __init__(self, deadline_ns: int, seq: int,
                 fn: Callable[[int], None], name: str, shard: str | None,
                 ) -> None:
        self.deadline_ns = deadline_ns
        self.seq = seq
        self.fn = fn
        self.name = name
        self.shard = shard
        self._fired = False
        self._cancelled = False

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor
        cancelled."""
        return not (self._fired or self._cancelled)

    def cancel(self) -> bool:
        """Tombstone the event; returns True if it was still pending.

        O(1): the heap entry stays put and is discarded when it
        surfaces (or during compaction).
        """
        if self._fired or self._cancelled:
            return False
        self._cancelled = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("fired" if self._fired
                 else "cancelled" if self._cancelled else "pending")
        return (f"ScheduledEvent({self.name or self.fn!r} "
                f"@{self.deadline_ns}ns, {state})")


class SimClock:
    """A monotonically increasing simulated-time counter (nanoseconds).

    The clock also keeps per-category totals so experiments can report
    *where* time went (syscall overhead vs disk I/O vs DMA), which is how
    the paper argues about "expensive page-in operations during
    communication".
    """

    def __init__(self) -> None:
        self._now_ns: int = 0
        self._by_category: dict[str, int] = {}
        self._frozen = False
        #: event calendar: lazy min-heap of (deadline_ns, tiekey, seq,
        #: event) — tiekey is 0 (FIFO identity) unless a tie-break seed
        #: is installed (see :meth:`set_tiebreak`)
        self._events: list[tuple[int, int, int, ScheduledEvent]] = []
        self._seq = 0
        self._tombstones = 0
        self._dispatching = False
        self._tiebreak_seed: int | None = None
        #: the calendar callback currently executing, if any — analysis
        #: code reads this to attribute work to an execution context
        self.current_firing: ScheduledEvent | None = None
        self._calendar_hooks: list[CalendarHook] = []
        #: deprecated per-charge fan-out shim (see :meth:`subscribe`)
        self._watchers: list[Callable[[int], None]] = []
        self._notifying = False

    # -- reading ----------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_ns / 1000.0

    def category_ns(self, category: str) -> int:
        """Total nanoseconds charged under ``category`` (0 if never used)."""
        return self._by_category.get(category, 0)

    def categories(self) -> dict[str, int]:
        """A copy of the per-category totals."""
        return dict(self._by_category)

    # -- charging ---------------------------------------------------------

    def charge(self, ns: int, category: str = "uncategorized") -> None:
        """Advance the clock by ``ns`` nanoseconds.

        ``ns`` must be non-negative; a zero charge is legal and records
        nothing.  While the clock is frozen (see :meth:`frozen`) charges
        are ignored — used by setup code that should not pollute
        measurements — and consequently no calendar events fire.

        After advancing, calendar events whose deadline has been reached
        are dispatched in deadline order (FIFO among ties).  Dispatch is
        non-reentrant: work a callback performs charges the clock too,
        but never recursively re-enters dispatch — the outer loop picks
        up anything that became due.
        """
        if ns < 0:
            raise ValueError(f"cannot charge negative time: {ns}")
        if self._frozen or ns == 0:
            return
        self._now_ns += ns
        self._by_category[category] = self._by_category.get(category, 0) + ns
        # O(1) peek: the common case is that nothing is due.
        events = self._events
        if events and events[0][0] <= self._now_ns and not self._dispatching:
            self._dispatch()
        # Wake the deprecated per-charge watchers (subscribe() shim).
        if self._watchers and not self._notifying:
            self._notifying = True
            try:
                for fn in tuple(self._watchers):
                    fn(self._now_ns)
            finally:
                self._notifying = False

    def _dispatch(self) -> None:
        """Pop and run every event whose deadline has passed.

        Callbacks may charge the clock (advancing ``now_ns``) and may
        schedule or cancel events; the loop re-evaluates the heap top
        each iteration, so an event that becomes due *during* dispatch
        fires in the same pass.
        """
        events = self._events
        self._dispatching = True
        if self._calendar_hooks:
            for hook in tuple(self._calendar_hooks):
                hook.pass_begin()
        try:
            while events and events[0][0] <= self._now_ns:
                _, _, _, event = heapq.heappop(events)
                if event._cancelled:
                    self._tombstones -= 1
                    continue
                event._fired = True
                if self._calendar_hooks:
                    hooks = tuple(self._calendar_hooks)
                    self.current_firing = event
                    for hook in hooks:
                        hook.fire_begin(event)
                    try:
                        event.fn(self._now_ns)
                    finally:
                        self.current_firing = None
                        for hook in hooks:
                            hook.fire_end(event)
                else:
                    event.fn(self._now_ns)
        finally:
            self._dispatching = False

    # -- the event calendar ------------------------------------------------

    def schedule_at(self, deadline_ns: int, fn: Callable[[int], None],
                    *, name: str = "", shard: str | None = None,
                    ) -> ScheduledEvent:
        """Schedule ``fn(now_ns)`` to run once the clock reaches
        ``deadline_ns``.

        O(log n).  The callback runs during the :meth:`charge` that
        crosses the deadline — with ``now_ns`` possibly *past* it, if a
        single charge jumped several intervals (callers wanting a cadence
        fire once and reschedule relative to ``now_ns``).  A deadline at
        or before the current time fires on the next non-frozen, nonzero
        charge, never synchronously inside ``schedule_at``.

        ``name`` labels the event for diagnostics; ``shard`` groups
        events for bulk cancellation (see :meth:`cancel_shard`) — per-
        kernel daemons on a shared cluster clock tag their events with a
        machine shard so one host's teardown never touches another's.
        """
        if deadline_ns < 0:
            raise ValueError(f"cannot schedule in negative time: "
                             f"{deadline_ns}")
        self._seq += 1
        event = ScheduledEvent(deadline_ns, self._seq, fn, name, shard)
        seed = self._tiebreak_seed
        key = 0 if seed is None else tiebreak_key(seed, self._seq)
        heapq.heappush(self._events, (deadline_ns, key, self._seq, event))
        if self._calendar_hooks:
            for hook in tuple(self._calendar_hooks):
                hook.scheduled(event)
        return event

    def schedule_after(self, delay_ns: int, fn: Callable[[int], None],
                       *, name: str = "", shard: str | None = None,
                       ) -> ScheduledEvent:
        """Schedule ``fn`` to run ``delay_ns`` from now (see
        :meth:`schedule_at`)."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in negative time: {delay_ns}")
        return self.schedule_at(self._now_ns + delay_ns, fn,
                                name=name, shard=shard)

    def cancel(self, event: ScheduledEvent) -> bool:
        """Cancel ``event``; returns True if it was still pending.

        Lazy: the heap entry is tombstoned in place.  When more than
        half the heap (beyond a small floor) is tombstones, the live
        entries are re-heapified so the calendar never degenerates.
        """
        if not event.cancel():
            return False
        self._tombstones += 1
        if self._tombstones > 16 and self._tombstones * 2 > len(self._events):
            self._compact()
        return True

    def cancel_shard(self, shard: str) -> int:
        """Cancel every pending event tagged with ``shard``; returns how
        many were cancelled."""
        cancelled = 0
        for _, _, _, event in self._events:
            if event.shard == shard and event.cancel():
                cancelled += 1
        self._tombstones += cancelled
        if self._tombstones > 16 and self._tombstones * 2 > len(self._events):
            self._compact()
        return cancelled

    def pending_events(self, shard: str | None = None) -> int:
        """Number of pending (non-tombstoned) events, optionally only
        those tagged ``shard``."""
        return sum(1 for _, _, _, ev in self._events
                   if ev.pending and (shard is None or ev.shard == shard))

    def _compact(self) -> None:
        live = [entry for entry in self._events if entry[3].pending]
        heapq.heapify(live)
        self._events = live
        self._tombstones = 0

    # -- tie-break permutation & calendar hooks ----------------------------

    @property
    def tiebreak_seed(self) -> int | None:
        """The installed tie-break seed (``None`` = FIFO identity)."""
        return self._tiebreak_seed

    def set_tiebreak(self, seed: int | None) -> int | None:
        """Install a seed permuting dispatch order among same-deadline
        events; returns the previous seed.

        With ``seed=None`` (the default) ties dispatch FIFO in schedule
        order.  With an integer seed, each event's secondary heap key
        becomes :func:`tiebreak_key(seed, seq) <tiebreak_key>`, so every
        tie group dispatches in a seed-determined permutation — fully
        deterministic, and predictable offline from the (seed, seq)
        pairs alone.  Only events scheduled *after* the call are
        affected; deadline order is never violated, so every permuted
        schedule is a legal schedule.  The seed survives :meth:`reset`
        (the explorer spans resets within one run).
        """
        prev = self._tiebreak_seed
        self._tiebreak_seed = seed
        return prev

    def add_calendar_hook(self, hook: CalendarHook) -> Callable[[], None]:
        """Install a :class:`CalendarHook`; returns a remover callable.

        Hooks observe scheduling and dispatch; with none installed the
        dispatch path pays a single truthiness test per event.
        """
        self._calendar_hooks.append(hook)

        def remove() -> None:
            try:
                self._calendar_hooks.remove(hook)
            except ValueError:
                pass
        return remove

    # -- deprecated subscriber shim ----------------------------------------

    def subscribe(self, fn: Callable[[int], None]) -> Callable[[], None]:
        """Register a watcher called with ``now_ns`` after every
        (non-frozen, nonzero) charge; returns an unsubscribe callable.

        .. deprecated::
            This is the pre-calendar model of periodic daemons — every
            charge fans out to every watcher, which is O(watchers) on
            the hottest path in the simulator.  Use
            :meth:`schedule_after` / :meth:`schedule_at` instead.  The
            shim is kept for out-of-tree callers and for the
            watchdog's legacy (``use_events=False``) benchmark arm;
            in-tree call sites are flagged by the ``clock-subscribe``
            repro-lint rule.
        """
        self._watchers.append(fn)

        def unsubscribe() -> None:
            try:
                self._watchers.remove(fn)
            except ValueError:
                pass
        return unsubscribe

    @contextmanager
    def frozen(self) -> Iterator[None]:
        """Context manager during which all charges are discarded.

        Time does not advance, so no calendar events fire and no
        watchers are notified inside the block.
        """
        prev = self._frozen
        self._frozen = True
        try:
            yield
        finally:
            self._frozen = prev

    # -- measurement helpers ----------------------------------------------

    @contextmanager
    def measure(self) -> Iterator["_Span"]:
        """Context manager yielding a span whose ``elapsed_ns`` is the
        simulated time consumed inside the block."""
        span = _Span(self)
        try:
            yield span
        finally:
            span.stop()

    def reset(self) -> None:
        """Zero the clock: time, category totals, the event calendar,
        and watcher bookkeeping.

        Pending events are cancelled (their handles report
        ``pending == False`` and a later ``cancel()`` is a no-op) and
        subscribed watchers are dropped, so periodic daemons from a
        previous benchmark phase cannot misfire into the next one.
        Daemons that should survive a reset must be re-started against
        the fresh timeline.  The tie-break seed and calendar hooks are
        *kept*: an exploration run owns both for its whole lifetime,
        resets included (remove hooks explicitly when detaching).
        """
        self._now_ns = 0
        self._by_category.clear()
        for _, _, _, event in self._events:
            event._cancelled = True
        self._events.clear()
        # The sequence counter restarts with the timeline: replaying the
        # same schedule after a reset reproduces the same tie-break
        # permutation (the calendar is empty, so no handle can collide).
        self._seq = 0
        self._tombstones = 0
        self._watchers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SimClock(now={self._now_ns}ns, "
                f"events={self.pending_events()})")


class _Span:
    """Elapsed-simulated-time span produced by :meth:`SimClock.measure`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now_ns
        self._stop: int | None = None

    def stop(self) -> None:
        """Freeze the span at the current simulated time."""
        if self._stop is None:
            self._stop = self._clock.now_ns

    @property
    def elapsed_ns(self) -> int:
        end = self._stop if self._stop is not None else self._clock.now_ns
        return end - self._start

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / 1000.0
