"""Event tracing.

A bounded ring buffer of structured events.  Subsystems emit events
("swap_out", "dma_write", "tpt_stale", ...) and tests/benchmarks assert on
them — e.g. E1 verifies that the refcount backend's failure is caused by a
``swap_out`` of a registered page, not by some unrelated path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    ts_ns: int                 #: simulated timestamp
    kind: str                  #: event kind, e.g. ``"swap_out"``
    detail: dict = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.detail[key]


class Trace:
    """Bounded event log with simple querying.

    ``maxlen`` bounds memory; experiments that need full history can set
    it high.  Emission is O(1); queries are linear scans (traces are short
    relative to simulation work).
    """

    def __init__(self, clock, maxlen: int = 65536) -> None:
        self._clock = clock
        self._events: Deque[TraceEvent] = deque(maxlen=maxlen)
        self._counts: dict[str, int] = {}
        self.enabled = True

    def emit(self, kind: str, **detail: Any) -> None:
        """Record an event (no-op while disabled)."""
        if not self.enabled:
            return
        self._events.append(TraceEvent(self._clock.now_ns, kind, detail))
        self._counts[kind] = self._counts.get(kind, 0) + 1

    # -- querying -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def count(self, kind: str) -> int:
        """Total number of events of ``kind`` ever emitted (survives ring
        eviction)."""
        return self._counts.get(kind, 0)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All retained events of ``kind``."""
        return [e for e in self._events if e.kind == kind]

    def where(self, pred: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """All retained events satisfying ``pred``."""
        return [e for e in self._events if pred(e)]

    def last(self, kind: str) -> TraceEvent | None:
        """Most recent retained event of ``kind``, or None."""
        for e in reversed(self._events):
            if e.kind == kind:
                return e
        return None

    def clear(self) -> None:
        """Drop retained events and counters."""
        self._events.clear()
        self._counts.clear()
