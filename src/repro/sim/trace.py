"""Event tracing.

A bounded ring buffer of structured events.  Subsystems emit events
("swap_out", "dma_write", "tpt_stale", ...) and tests/benchmarks assert on
them — e.g. E1 verifies that the refcount backend's failure is caused by a
``swap_out`` of a registered page, not by some unrelated path.

Two correctness properties the querying API guarantees:

* **Eviction is visible.**  The ring drops the oldest event when full;
  :meth:`Trace.dropped_count` says how many events of a kind were lost,
  and in strict mode (``Trace(..., strict=True)`` or ``trace.strict =
  True``) :meth:`Trace.of_kind`/:meth:`Trace.last` raise
  :class:`TraceEvicted` instead of silently returning a partial view.
  The default (non-strict) mode warns with :class:`TraceEvictionWarning`
  once per kind.
* **Details are immutable history.**  ``emit(frames=live_list)``
  snapshots the detail mapping at emission time (the dict is copied, and
  mutable container values — list/set/dict — are shallow-copied), so a
  caller mutating its object later cannot rewrite what the trace says
  happened at ``ts_ns``.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Iterator

from repro.errors import ReproError


class TraceEvicted(ReproError):
    """A strict-mode trace query touched a kind whose events were
    (partly) evicted from the ring — the result would be a lie."""


class TraceEvictionWarning(UserWarning):
    """A non-strict trace query returned a partial view: events of the
    queried kind were evicted from the ring."""


def _snapshot_detail(detail: dict) -> dict:
    """Copy a detail mapping so later caller-side mutation cannot
    rewrite history; container values are shallow-copied."""
    out = {}
    for key, value in detail.items():
        if type(value) in (list, set, dict):
            value = value.copy()
        out[key] = value
    return out


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    ts_ns: int                 #: simulated timestamp
    kind: str                  #: event kind, e.g. ``"swap_out"``
    detail: dict = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.detail[key]


class Trace:
    """Bounded event log with simple querying.

    ``maxlen`` bounds memory; experiments that need full history can set
    it high.  Emission is O(1); queries are linear scans (traces are short
    relative to simulation work).
    """

    def __init__(self, clock, maxlen: int = 65536,
                 strict: bool = False) -> None:
        self._clock = clock
        self._events: Deque[TraceEvent] = deque(maxlen=maxlen)
        self._counts: dict[str, int] = {}
        self._dropped: dict[str, int] = {}
        self._warned: set[str] = set()
        self.enabled = True
        #: strict mode: queries raise :class:`TraceEvicted` instead of
        #: warning when the queried kind lost events to ring eviction
        self.strict = strict

    def emit(self, kind: str, **detail: Any) -> None:
        """Record an event (no-op while disabled).

        The detail mapping is snapshotted: the dict and any list/set/dict
        values are copied, so the event's history is immune to later
        mutation of caller-owned objects.
        """
        if not self.enabled:
            return
        events = self._events
        if len(events) == events.maxlen:
            victim = events[0]
            self._dropped[victim.kind] = \
                self._dropped.get(victim.kind, 0) + 1
        events.append(TraceEvent(self._clock.now_ns, kind,
                                 _snapshot_detail(detail)))
        self._counts[kind] = self._counts.get(kind, 0) + 1

    # -- querying -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def count(self, kind: str) -> int:
        """Total number of events of ``kind`` ever emitted (survives ring
        eviction)."""
        return self._counts.get(kind, 0)

    def dropped_count(self, kind: str) -> int:
        """How many events of ``kind`` were evicted from the ring —
        ``count(kind) - dropped_count(kind)`` is what queries can see."""
        return self._dropped.get(kind, 0)

    def _check_evicted(self, kind: str) -> None:
        dropped = self._dropped.get(kind, 0)
        if not dropped:
            return
        msg = (f"trace ring evicted {dropped} of {self.count(kind)} "
               f"{kind!r} events; queries see a partial view "
               f"(raise maxlen or clear() between phases)")
        if self.strict:
            raise TraceEvicted(msg)
        if kind not in self._warned:
            self._warned.add(kind)
            warnings.warn(msg, TraceEvictionWarning, stacklevel=3)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All retained events of ``kind``.

        If events of this kind were evicted, warns (once per kind) —
        or raises :class:`TraceEvicted` in strict mode — because the
        list is incomplete.
        """
        self._check_evicted(kind)
        return [e for e in self._events if e.kind == kind]

    def where(self, pred: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """All retained events satisfying ``pred`` (retained only: events
        evicted from the ring are not consulted — check
        :meth:`dropped_count` for the kinds you care about)."""
        return [e for e in self._events if pred(e)]

    def last(self, kind: str) -> TraceEvent | None:
        """Most recent retained event of ``kind``, or None.

        Subject to the same eviction check as :meth:`of_kind`: a strict
        trace raises when earlier events of ``kind`` were evicted (the
        *most recent* is retained, but "None" would be wrong if all were
        evicted, so the check keeps both cases honest).
        """
        self._check_evicted(kind)
        for e in reversed(self._events):
            if e.kind == kind:
                return e
        return None

    def clear(self) -> None:
        """Start a fresh observation window: drop retained events AND
        reset the lifetime/eviction counters.

        After ``clear()``, :meth:`count` and :meth:`dropped_count` both
        report zero — the counters describe the window since the last
        clear, not the trace's whole life.  Use this between experiment
        phases so per-phase assertions are not polluted by setup events
        (and so strict mode does not trip on pre-phase evictions).
        """
        self._events.clear()
        self._counts.clear()
        self._dropped.clear()
        self._warned.clear()
