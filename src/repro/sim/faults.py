"""Deterministic, seeded fault injection.

The paper's argument is that unreliable pinning corrupts VIA transfers
*silently*; demonstrating that the rest of the stack keeps its
invariants requires injecting failures systematically, not waiting for
them.  A :class:`FaultPlan` is a seeded schedule of misbehaviour that
the fabric, NICs, DMA engines, and the Kernel Agent consult at their
fault points:

* **wire faults** — drop, duplicate, corrupt, or delay fabric packets
  (probabilities per packet, one shared RNG so a seed fully determines
  a run);
* **DMA faults** — a transfer fails mid-flight, as a real bus-master
  would on a parity error or PCI abort;
* **registration faults** — the next N registration or pin attempts
  fail with ``VIP_ERROR_RESOURCE``, modelling TPT exhaustion or a
  locking backend that cannot pin under memory pressure;
* **NIC reset** — at a scheduled simulated time a NIC resets: every
  active VI transitions to ``ERROR`` and outstanding descriptors
  complete with ``VIP_ERROR_CONN_LOST``.

Wire a plan into a running system with :func:`install`::

    plan = FaultPlan(seed=7, loss_rate=0.2, corrupt_rate=0.05)
    install(plan, cluster)          # or a single Machine / Fabric

Every decision the plan takes is counted in :class:`FaultStats`, so
chaos tests can assert both that faults actually fired and that the
stack survived them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProcessKilled
from repro.sim.rng import make_rng

#: Default extra latency of a delayed packet (one disk-seek-ish stall).
DEFAULT_DELAY_NS = 20_000

#: Crash points inside the driver's registration path, in execution
#: order: before the backend pins, after the pin but before the TPT
#: install, inside the TPT install window, and after the registration is
#: fully recorded.
REGISTRATION_CRASH_POINTS: tuple[str, ...] = (
    "register.start",
    "register.pinned",
    "register.install",
    "register.installed",
)

#: Crash points inside the kernel itself (backend-specific, so not part
#: of the backend-agnostic registration sweep): mid-pin in
#: ``map_user_kiobuf``, after a page was pinned but before the kiobuf
#: record exists; and inside the capability dance, after ``cap_raise``
#: granted CAP_IPC_LOCK but before ``mlock`` ran — the window where a
#: death must not leave the capability behind.
KERNEL_CRASH_POINTS: tuple[str, ...] = (
    "kiobuf.pin",
    "mlock.cap_raised",
)

#: Crash points inside a rendezvous zero-copy transfer, mapping each
#: point to the rank that dies there (the *other* rank must then observe
#: VIP_ERROR_CONN_LOST instead of hanging).
TRANSFER_CRASH_POINTS: dict[str, str] = {
    "xfer.rts_sent": "sender",
    "xfer.rts_received": "receiver",
    "xfer.dst_registered": "receiver",
    "xfer.cts_received": "sender",
    "xfer.src_registered": "sender",
    "xfer.rdma_done": "sender",
    "xfer.fin_sent": "sender",
    "xfer.fin_received": "receiver",
}

#: Crash points inside a distributed-lock-manager critical section, in
#: execution order: right after the lock is acquired, between the read
#: and the write of the protected word, after the write, and on the
#: verge of releasing.  Each one leaves the lock *held by a corpse* —
#: the recovery path (lease expiry or connection-loss detection, then
#: forced reclaim) is what the DLM chaos sweep exercises.
DLM_CRASH_POINTS: tuple[str, ...] = (
    "dlm.acquired",
    "dlm.cs_read",
    "dlm.cs_write",
    "dlm.before_release",
)

#: Crash points inside the ODP fault-service path, in execution order:
#: after the fault request is accepted but before any page work, after
#: the pages are faulted in and pinned but before the TPT is patched,
#: and after the patch but before the NIC is resumed.  Each one kills
#: the owner while a DMA sits suspended on its registration — the exit
#: path must release every just-in-time pin and the NIC must complete
#: the suspended descriptor in error, leaking nothing.
ODP_CRASH_POINTS: tuple[str, ...] = (
    "odp_fault.start",
    "odp_fault.pinned",
    "odp_fault.patched",
)

#: Every crash point a plan may name.
CRASH_POINTS: tuple[str, ...] = (
    REGISTRATION_CRASH_POINTS + KERNEL_CRASH_POINTS
    + tuple(TRANSFER_CRASH_POINTS) + DLM_CRASH_POINTS + ODP_CRASH_POINTS)


@dataclass
class FaultStats:
    """How many faults of each kind a plan has injected."""

    drops: int = 0
    duplicates: int = 0
    corruptions: int = 0
    delays: int = 0
    dma_failures: int = 0
    registration_failures: int = 0
    pin_failures: int = 0
    nic_resets: int = 0
    crashes: int = 0

    @property
    def total(self) -> int:
        return (self.drops + self.duplicates + self.corruptions
                + self.delays + self.dma_failures
                + self.registration_failures + self.pin_failures
                + self.nic_resets + self.crashes)


@dataclass
class FaultPlan:
    """A seeded schedule of injected failures.

    Rates are per-decision probabilities in ``[0, 1]``; budgets
    (``registration_failures``, ``pin_failures``) are consumed
    first-come-first-served; the NIC reset is a one-shot scheduled at a
    simulated time.  All draws come from one RNG, so the same seed and
    the same workload replay the same faults.
    """

    seed: int = 0
    #: probability a fabric packet (or its ACK) is dropped in flight
    loss_rate: float = 0.0
    #: probability a delivered packet is delivered a second time
    duplicate_rate: float = 0.0
    #: probability a packet's payload is corrupted in flight
    corrupt_rate: float = 0.0
    #: probability a packet is delayed by ``delay_ns`` extra wire time
    delay_rate: float = 0.0
    delay_ns: int = DEFAULT_DELAY_NS
    #: probability any single DMA transfer faults
    dma_fail_rate: float = 0.0
    #: fail the next N memory registrations (driver/TPT level)
    registration_failures: int = 0
    #: fail the next N pin attempts (locking-backend level)
    pin_failures: int = 0
    #: reset a NIC at this simulated time (None = never)
    nic_reset_at_ns: int | None = None
    #: restrict the reset to one NIC by name (None = every NIC checks)
    nic_reset_name: str | None = None
    #: kill a process when execution reaches this crash point (one-shot;
    #: see CRASH_POINTS for the instrumented locations)
    crash_point: str | None = None
    #: restrict the crash to this pid (None = first process to reach
    #: the crash point dies)
    crash_pid: int | None = None

    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self) -> None:
        # Every public knob is validated here — a typo'd or out-of-range
        # fault plan must fail at construction, not half-way through a
        # chaos run (repro-lint's faultplan-validation rule enforces
        # that this stays true as knobs are added).
        if self.seed < 0:
            raise ValueError(
                f"seed must be >= 0, got {self.seed} "
                f"(the RNG rejects negative seeds)")
        for attr in ("loss_rate", "duplicate_rate", "corrupt_rate",
                     "delay_rate", "dma_fail_rate"):
            rate = getattr(self, attr)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {rate}")
        for attr in ("registration_failures", "pin_failures"):
            budget = getattr(self, attr)
            if budget < 0:
                raise ValueError(
                    f"{attr} must be >= 0, got {budget} "
                    f"(a negative failure budget can never be consumed)")
        if (self.nic_reset_name is not None
                and not isinstance(self.nic_reset_name, str)):
            raise ValueError(
                f"nic_reset_name must be a NIC name or None, "
                f"got {self.nic_reset_name!r}")
        if (self.crash_point is not None
                and self.crash_point not in CRASH_POINTS):
            raise ValueError(
                f"unknown crash point {self.crash_point!r}; "
                f"choose one of {sorted(CRASH_POINTS)}")
        # Signs: a negative delay would deliver packets in the past
        # (breaking clock monotonicity); pids and deadlines are
        # non-negative by construction everywhere else in the simulator.
        if self.delay_ns < 0:
            raise ValueError(
                f"delay_ns must be >= 0, got {self.delay_ns} "
                f"(a negative delay would move packets back in time)")
        if self.crash_pid is not None and self.crash_pid < 0:
            raise ValueError(
                f"crash_pid must be >= 0, got {self.crash_pid}")
        if self.nic_reset_at_ns is not None and self.nic_reset_at_ns < 0:
            raise ValueError(
                f"nic_reset_at_ns must be >= 0, got {self.nic_reset_at_ns}")
        self._rng = make_rng(self.seed)
        self._reset_fired = False
        self._crash_fired = False

    # -- wire faults --------------------------------------------------------

    def _roll(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate

    def should_drop(self) -> bool:
        """Drop this packet (or this ACK)?"""
        if self._roll(self.loss_rate):
            self.stats.drops += 1
            return True
        return False

    def should_duplicate(self) -> bool:
        """Deliver this packet a second time?"""
        if self._roll(self.duplicate_rate):
            self.stats.duplicates += 1
            return True
        return False

    def should_corrupt(self) -> bool:
        """Corrupt this packet's payload in flight?"""
        if self._roll(self.corrupt_rate):
            self.stats.corruptions += 1
            return True
        return False

    def corrupt(self, payload: bytes) -> bytes:
        """Flip one deterministic byte of ``payload`` (empty payloads
        come back empty — there is nothing to corrupt)."""
        if not payload:
            return payload
        index = int(self._rng.integers(0, len(payload)))
        out = bytearray(payload)
        out[index] ^= 0xFF
        return bytes(out)

    def delay(self) -> int:
        """Extra wire nanoseconds for this packet (0 = on time)."""
        if self._roll(self.delay_rate):
            self.stats.delays += 1
            return self.delay_ns
        return 0

    # -- DMA faults ---------------------------------------------------------

    def should_fail_dma(self) -> bool:
        """Fault this DMA transfer?"""
        if self._roll(self.dma_fail_rate):
            self.stats.dma_failures += 1
            return True
        return False

    # -- registration faults ------------------------------------------------

    def take_registration_failure(self) -> bool:
        """Consume one registration-failure budget slot (False = none
        left; the registration proceeds normally)."""
        if self.registration_failures > 0:
            self.registration_failures -= 1
            self.stats.registration_failures += 1
            return True
        return False

    def take_pin_failure(self) -> bool:
        """Consume one pin-failure budget slot."""
        if self.pin_failures > 0:
            self.pin_failures -= 1
            self.stats.pin_failures += 1
            return True
        return False

    # -- NIC reset ----------------------------------------------------------

    def nic_reset_due(self, now_ns: int, nic_name: str) -> bool:
        """One-shot: has the scheduled reset time arrived for this NIC?"""
        if (self._reset_fired or self.nic_reset_at_ns is None
                or now_ns < self.nic_reset_at_ns):
            return False
        if (self.nic_reset_name is not None
                and nic_name != self.nic_reset_name):
            return False
        self._reset_fired = True
        self.stats.nic_resets += 1
        return True

    # -- process crashes ----------------------------------------------------

    def take_crash(self, point: str, pid: int) -> bool:
        """One-shot: does the process ``pid`` die at ``point``?"""
        if self._crash_fired or self.crash_point != point:
            return False
        if self.crash_pid is not None and pid != self.crash_pid:
            return False
        self._crash_fired = True
        self.stats.crashes += 1
        return True


def crash_if_due(plan: FaultPlan | None, kernel, task, point: str) -> None:
    """Instrumentation hook for crash points.

    If ``plan`` schedules a crash for ``task`` at ``point``, kill the
    task through the kernel (running the full exit-path reclamation) and
    raise :class:`~repro.errors.ProcessKilled` so the interrupted
    operation unwinds like a syscall aborted by a fatal signal.
    """
    if plan is None or task is None:
        return
    if not plan.take_crash(point, task.pid):
        return
    kernel.trace.emit("crash_point", point=point, pid=task.pid)
    kernel.kill(task.pid)
    raise ProcessKilled(
        f"pid {task.pid} killed at crash point {point!r}",
        pid=task.pid, point=point)


def install(plan: FaultPlan | None, target) -> FaultPlan | None:
    """Wire ``plan`` into every fault point reachable from ``target``.

    ``target`` may be a :class:`~repro.via.machine.Cluster`, a
    :class:`~repro.via.machine.Machine`, or a bare
    :class:`~repro.via.fabric.Fabric` (which covers its attached NICs).
    Passing ``plan=None`` uninstalls fault injection again.  Returns the
    plan for chaining.
    """
    # Local imports: sim must stay importable without the via layer.
    from repro.via.fabric import Fabric
    from repro.via.machine import Cluster, Machine

    if isinstance(target, Cluster):
        target.fabric.fault_plan = plan
        for machine in target.machines:
            _install_machine(plan, machine)
    elif isinstance(target, Machine):
        target.fabric.fault_plan = plan
        _install_machine(plan, target)
    elif isinstance(target, Fabric):
        target.fault_plan = plan
        for nic in target.nics.values():
            nic.fault_plan = plan
            nic.dma.fault_plan = plan
    else:
        raise TypeError(
            f"cannot install a FaultPlan on {type(target).__name__}")
    return plan


def _install_machine(plan: FaultPlan | None, machine) -> None:
    machine.nic.fault_plan = plan
    machine.nic.dma.fault_plan = plan
    machine.agent.fault_plan = plan
    # Kernel-internal crash points (kiobuf pinning) read the plan off
    # the kernel itself — the kiobuf layer knows nothing about drivers.
    machine.kernel.fault_plan = plan
    _schedule_nic_reset(plan, machine.nic)


def _schedule_nic_reset(plan: FaultPlan | None, nic) -> None:
    """Put a scheduled NIC reset on the clock's event calendar.

    Legacy behaviour made the reset depend on the victim happening to
    poll ``check_faults()`` at a doorbell after the deadline; the
    calendar event guarantees a wake-up at the deadline itself.  The
    event just calls ``check_faults()`` — idempotent, one-shot through
    ``nic_reset_due``, and still polled at every post — so uninstalling
    the plan before the deadline turns the event into a no-op.
    """
    if plan is None or plan.nic_reset_at_ns is None:
        return
    if plan.nic_reset_name is not None and nic.name != plan.nic_reset_name:
        return
    clock = nic.kernel.clock
    clock.schedule_at(max(plan.nic_reset_at_ns, clock.now_ns),
                      lambda now_ns: nic.check_faults(),
                      name=f"nic-reset:{nic.name}")
