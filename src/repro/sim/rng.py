"""Deterministic RNG helpers.

Everything stochastic in the simulator (reclaim victim choice when ages
tie, allocator touch order, workload payloads) draws from RNGs created
here, so a seed fully determines an experiment run.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically.

    ``None`` still produces a *fixed* default seed: the simulator refuses
    to be accidentally nondeterministic; callers wanting entropy must ask
    for it explicitly by passing a varying seed.
    """
    return np.random.default_rng(0 if seed is None else seed)


def derive(rng: np.random.Generator, salt: int) -> np.random.Generator:
    """Derive an independent child stream from ``rng`` and a salt.

    Used to give each simulated task its own stream so adding a task does
    not perturb the draws of existing ones.
    """
    return np.random.default_rng([int(rng.integers(0, 2**63)), salt])
