"""Simulation support: deterministic clock, cost model, tracing, RNG."""

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.trace import Trace, TraceEvent
from repro.sim.rng import make_rng

__all__ = ["SimClock", "CostModel", "Trace", "TraceEvent", "make_rng"]
