"""Simulation support: deterministic clock, cost model, tracing, RNG,
fault injection."""

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.faults import FaultPlan, FaultStats, install
from repro.sim.trace import Trace, TraceEvent
from repro.sim.rng import make_rng

__all__ = ["SimClock", "CostModel", "FaultPlan", "FaultStats", "install",
           "Trace", "TraceEvent", "make_rng"]
