"""The VIA NIC: descriptor processing, protection enforcement, DMA.

Processing is synchronous and deterministic: posting a send executes the
transfer immediately (doorbell → descriptor fetch → TPT translation →
DMA → wire → remote delivery), charging every step to the simulated
clock.  All memory traffic goes through the NIC's own
:class:`~repro.hw.dma.DMAEngine` using **physical addresses recorded in
the TPT at registration time** — the property under test.

For RELIABLE VIs the NIC also runs the retransmission protocol the VIA
spec mandates: every data packet carries a sequence number and a CRC;
delivery is acknowledged implicitly; a lost packet (or lost ACK) expires
a retransmission timer with exponential backoff; a corrupted packet is
NACKed and resent immediately; the receiver deduplicates retransmits by
sequence number.  When the retry budget is exhausted the connection is
declared lost: the VI transitions to ``ERROR`` and every outstanding
descriptor completes with ``VIP_ERROR_CONN_LOST``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.events import DMA_RESUME, DMA_SUSPEND, DOORBELL
from repro.errors import (
    DescriptorError, DMAFault, KernelError, NotRegistered, ProcessKilled,
    ProtectionError, TranslationFault, ViaConnectionError, ViaError,
)
from repro.hw.dma import DMAEngine
from repro.hw.physmem import PhysicalMemory
from repro.kernel.flags import VM_LOCKED
from repro.via.constants import (
    ATOMIC_OPERAND_BYTES, ATOMIC_RESPONSE_CACHE, ATOMIC_TYPES,
    MAX_RETRANSMITS, VIP_DESCRIPTOR_ERROR, VIP_ERROR_CONN_LOST,
    VIP_ERROR_NIC, VIP_INVALID_MEMORY, VIP_INVALID_PARAMETER,
    VIP_NOT_DONE, VIP_SUCCESS, DescriptorType, ReliabilityLevel, ViState,
)
from repro.via.cq import CompletionQueue
from repro.via.descriptor import Descriptor
from repro.via.fabric import Packet, payload_checksum
from repro.via.tpt import TranslationProtectionTable
from repro.via.vi import VirtualInterface

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.sim.faults import FaultPlan
    from repro.via.fabric import Fabric


class VIANic:
    """One VIA network interface controller."""

    def __init__(self, name: str, kernel: "Kernel",
                 tpt_entries: int = 8192,
                 max_retransmits: int = MAX_RETRANSMITS) -> None:
        self.name = name
        self.kernel = kernel
        self.tpt = TranslationProtectionTable(
            tpt_entries, clock=kernel.clock, costs=kernel.costs,
            events=kernel.events)
        self.dma = DMAEngine(kernel.phys, kernel.clock, kernel.costs,
                             kernel.trace, name=f"{name}-dma",
                             obs=kernel.obs, events=kernel.events)
        self.vis: dict[int, VirtualInterface] = {}
        self.fabric: "Fabric | None" = None
        self.fault_plan: "FaultPlan | None" = None
        self.max_retransmits = max_retransmits
        self._next_vi_id = 1
        # counters
        self.sends_completed = 0
        self.recvs_completed = 0
        self.rdma_writes_completed = 0
        self.rdma_reads_completed = 0
        self.atomics_completed = 0    #: requester-side atomic completions
        self.atomics_served = 0       #: responder-side RMWs executed
        self.atomic_replays = 0       #: retransmits answered from cache
        self.atomic_rejects = 0       #: misaligned/unregistered/unpinned
        self.recv_drops = 0           #: arrivals with no posted descriptor
        self.protection_faults = 0
        self.retransmits = 0          #: reliable-mode resends
        self.duplicates_dropped = 0   #: retransmits deduplicated by seq
        self.dma_faults = 0           #: injected DMA failures absorbed
        self.resets = 0               #: NIC resets (fault injection)
        self.dma_suspensions = 0      #: transfers parked on an ODP fault
        #: the kernel agent's ODP fault handler, bound at agent
        #: construction: ``(handle, pages, token=) -> {page: frame}``
        self.fault_service = None
        self._next_suspend_token = 1
        #: happens-before tokens stamped on posted descriptors when the
        #: analysis stream is armed (DOORBELL release → COMPLETION
        #: acquire); 0 is never issued so tokens are always truthy
        self._next_hb_token = 1
        #: per-word serialization of the atomic unit: flat physical word
        #: address → simulated time the word is held until.  An atomic
        #: arriving inside another atomic's contention window stalls.
        self._atomic_busy: dict[int, int] = {}

    # ------------------------------------------------------------------ VIs

    def create_vi(self, owner_pid: int, prot_tag: int,
                  reliability: ReliabilityLevel =
                  ReliabilityLevel.RELIABLE_DELIVERY,
                  send_cq: CompletionQueue | None = None,
                  recv_cq: CompletionQueue | None = None
                  ) -> VirtualInterface:
        """Create a VI owned by ``owner_pid`` under ``prot_tag``."""
        vi = VirtualInterface(self._next_vi_id, owner_pid, prot_tag,
                              reliability=reliability)
        vi.send_cq = send_cq
        vi.recv_cq = recv_cq
        self._next_vi_id += 1
        self.vis[vi.vi_id] = vi
        return vi

    def vi(self, vi_id: int) -> VirtualInterface:
        """Look a VI up by id."""
        vi = self.vis.get(vi_id)
        if vi is None:
            raise ViaConnectionError(f"{self.name}: no VI {vi_id}")
        return vi

    def destroy_vi(self, vi_id: int) -> None:
        """Remove a VI (must be disconnected)."""
        vi = self.vi(vi_id)
        if vi.state == ViState.CONNECTED:
            raise ViaConnectionError(
                f"VI {vi_id} is still connected")
        del self.vis[vi_id]

    def teardown_vi(self, vi_id: int, reason: str = "teardown") -> int:
        """Forcibly remove a VI in *any* state (exit path / reaper).

        A connected peer transitions to ERROR and flushes its work
        queues with ``VIP_ERROR_CONN_LOST`` — the survivor learns of the
        loss instead of hanging.  The VI's own outstanding descriptors
        are flushed the same way, and any completions it had parked in
        shared CQs are drained (nobody may poll a dead VI's
        notifications).  Returns the number of flushed descriptors.
        """
        vi = self.vi(vi_id)
        flushed = vi.outstanding
        if vi.peer is not None and self.fabric is not None:
            self.fabric.disconnect(self, vi_id)
        vi.enter_error()
        for cq in (vi.send_cq, vi.recv_cq):
            if cq is not None:
                cq.drain_vi(vi_id)
        del self.vis[vi_id]
        self.kernel.trace.emit("vi_teardown", nic=self.name, vi=vi_id,
                               owner=vi.owner_pid, reason=reason,
                               flushed=flushed)
        return flushed

    # ------------------------------------------------------------- fault hooks

    def check_faults(self) -> None:
        """Fire any scheduled fault whose time has come (NIC reset)."""
        plan = self.fault_plan
        if plan is not None and plan.nic_reset_due(
                self.kernel.clock.now_ns, self.name):
            self.reset(reason="scheduled")

    def reset(self, reason: str = "fault") -> None:
        """Reset the NIC: every active VI loses its connection.

        Each VI transitions to ``ERROR`` and completes all outstanding
        descriptors with ``VIP_ERROR_CONN_LOST``; peers discover the
        loss on their next transmission (delivery to a reset VI returns
        connection-lost).  Host-side state — registrations and TPT
        entries — survives, as it does across a real adapter reset, but
        the volatile translation cache does **not**: it is on-adapter
        SRAM and is flushed wholesale.
        """
        self.resets += 1
        self.kernel.obs.inc("via.nic.resets")
        self.tpt.invalidate_translations()
        # the atomic unit's word-hold latches are on-adapter state too
        self._atomic_busy.clear()
        self.kernel.trace.emit("nic_reset", nic=self.name, reason=reason)
        for vi in self.vis.values():
            if vi.state != ViState.IDLE:
                vi.enter_error()

    # ----------------------------------------------------------- descriptor posting

    def _charge_post(self) -> None:
        costs = self.kernel.costs
        self.kernel.clock.charge(costs.descriptor_build_ns, "via_cpu")
        self.kernel.clock.charge(costs.doorbell_ring_ns, "via_cpu")
        self.kernel.clock.charge(costs.descriptor_fetch_ns, "via_nic")

    def _announce_post(self, descs: "list[Descriptor]", vi_id: int,
                       pid: int, queue: str) -> None:
        """Publish the post on the analysis stream: one DOORBELL per
        descriptor, each carrying a fresh happens-before token the CQ's
        COMPLETION event will acquire when the completion is observed."""
        events = self.kernel.events
        if not events.active:
            return
        for desc in descs:
            desc.hb_token = self._next_hb_token
            self._next_hb_token += 1
            events.emit(DOORBELL, token=desc.hb_token, vi=vi_id,
                        pid=pid, queue=queue)

    def post_recv(self, vi_id: int, desc: Descriptor, pid: int) -> None:
        """Post a receive descriptor (must precede the matching send)."""
        self.check_faults()
        vi = self.vi(vi_id)
        desc.validate()
        if desc.dtype != DescriptorType.RECV:
            raise DescriptorError(
                f"cannot post a {desc.dtype.value} descriptor to a "
                f"receive queue")
        vi.recv_doorbell.ring(pid)
        self._charge_post()
        desc.done = False
        desc.status = VIP_NOT_DONE
        desc.posted_at_ns = self.kernel.clock.now_ns
        self._announce_post([desc], vi_id, pid, "recv")
        vi.recv_queue.append(desc)
        obs = self.kernel.obs
        if obs.enabled:
            obs.metrics.gauge("via.nic.recv_queue_depth").set(
                len(vi.recv_queue))

    def post_send(self, vi_id: int, desc: Descriptor, pid: int) -> None:
        """Post a send/RDMA descriptor and process it immediately."""
        self.check_faults()
        vi = self.vi(vi_id)
        desc.validate()
        if desc.dtype == DescriptorType.RECV:
            raise DescriptorError(
                "cannot post a recv descriptor to a send queue")
        if (desc.dtype in ATOMIC_TYPES
                and vi.reliability == ReliabilityLevel.UNRELIABLE):
            raise DescriptorError(
                "atomic verbs require a RELIABLE VI: sequence-number "
                "dedup of retransmits is what makes them safe to replay")
        vi.send_doorbell.ring(pid)
        vi.require_connected()
        self._charge_post()
        desc.done = False
        desc.status = VIP_NOT_DONE
        desc.posted_at_ns = self.kernel.clock.now_ns
        self._announce_post([desc], vi_id, pid, "send")
        vi.send_queue.append(desc)
        obs = self.kernel.obs
        if obs.enabled:
            obs.metrics.gauge("via.nic.send_queue_depth").set(
                len(vi.send_queue))
        self._process_send_queue(vi)

    # -- batched posting -----------------------------------------------------

    def _charge_post_batch(self, n: int) -> None:
        """Charge one batch post: descriptor build per entry, doorbell
        ring and descriptor fetch once for the whole batch — the
        amortization linked descriptor lists buy on real VIA hardware."""
        costs = self.kernel.costs
        clock = self.kernel.clock
        clock.charge(costs.descriptor_build_ns * n, "via_cpu")
        clock.charge(costs.doorbell_ring_ns, "via_cpu")
        clock.charge(costs.descriptor_fetch_ns, "via_nic")

    def post_recv_many(self, vi_id: int, descs: "list[Descriptor]",
                       pid: int) -> int:
        """Post a batch of receive descriptors with one doorbell ring.

        Admission is all-or-nothing: every descriptor is validated
        before any is queued, so a bad entry rejects the whole batch
        instead of leaving it half-posted.  Returns how many were
        posted.
        """
        descs = list(descs)
        if not descs:
            return 0
        self.check_faults()
        vi = self.vi(vi_id)
        for desc in descs:
            desc.validate()
            if desc.dtype != DescriptorType.RECV:
                raise DescriptorError(
                    f"cannot post a {desc.dtype.value} descriptor to a "
                    f"receive queue")
        vi.recv_doorbell.ring(pid)
        self._charge_post_batch(len(descs))
        now = self.kernel.clock.now_ns
        self._announce_post(descs, vi_id, pid, "recv")
        for desc in descs:
            desc.done = False
            desc.status = VIP_NOT_DONE
            desc.posted_at_ns = now
            vi.recv_queue.append(desc)
        obs = self.kernel.obs
        if obs.enabled:
            obs.metrics.gauge("via.nic.recv_queue_depth").set(
                len(vi.recv_queue))
        return len(descs)

    def post_send_many(self, vi_id: int, descs: "list[Descriptor]",
                       pid: int) -> int:
        """Post a batch of send/RDMA descriptors and process them.

        Like :meth:`post_recv_many`: validation is all-or-nothing, the
        doorbell and descriptor fetch are charged once per batch, and
        the send queue is drained with a single processing pass instead
        of one per post.  Returns how many were posted.
        """
        descs = list(descs)
        if not descs:
            return 0
        self.check_faults()
        vi = self.vi(vi_id)
        for desc in descs:
            desc.validate()
            if desc.dtype == DescriptorType.RECV:
                raise DescriptorError(
                    "cannot post a recv descriptor to a send queue")
            if (desc.dtype in ATOMIC_TYPES
                    and vi.reliability == ReliabilityLevel.UNRELIABLE):
                raise DescriptorError(
                    "atomic verbs require a RELIABLE VI: sequence-number "
                    "dedup of retransmits is what makes them safe to "
                    "replay")
        vi.send_doorbell.ring(pid)
        vi.require_connected()
        self._charge_post_batch(len(descs))
        now = self.kernel.clock.now_ns
        self._announce_post(descs, vi_id, pid, "send")
        for desc in descs:
            desc.done = False
            desc.status = VIP_NOT_DONE
            desc.posted_at_ns = now
            vi.send_queue.append(desc)
        obs = self.kernel.obs
        if obs.enabled:
            obs.metrics.gauge("via.nic.send_queue_depth").set(
                len(vi.send_queue))
        self._process_send_queue(vi)
        return len(descs)

    # ------------------------------------------------------------ observability

    def _observe_completion(self, desc: Descriptor, queue: str) -> None:
        """Record the doorbell→completion latency of a successfully
        completed descriptor (callers guard on ``obs.enabled``, so the
        disabled path does not even pay this call)."""
        obs = self.kernel.obs
        if desc.posted_at_ns is not None:
            # repro-lint: allow(obs-unguarded) — guarded at every caller
            obs.metrics.histogram(
                "via.nic.doorbell_to_completion_ns").observe(
                    self.kernel.clock.now_ns - desc.posted_at_ns)
        # repro-lint: allow(obs-unguarded) — guarded at every caller
        obs.metrics.counter(f"via.nic.completions.{queue}").inc()

    # --------------------------------------------------------------- send processing

    #: give up on a transfer that keeps faulting (pressure evicting the
    #: pages as fast as the fault service brings them in)
    ODP_FAULT_ROUNDS = 16

    def _tpt_translate(self, handle: int, va: int, length: int,
                       prot_tag: int, **rdma: bool
                       ) -> list[tuple[int, int]]:
        """``tpt.translate`` with the ODP suspend/fault/resume loop.

        A :class:`TranslationFault` (invalid entries on an ODP region)
        parks the transfer, posts a fault request to the kernel agent,
        and retries once the agent has patched the TPT.  Non-ODP regions
        never fault, so they take the plain one-call path.
        """
        for _ in range(self.ODP_FAULT_ROUNDS):
            try:
                return self.tpt.translate(handle, va, length, prot_tag,
                                          **rdma)
            except TranslationFault as fault:
                self._service_fault(fault)
        raise NotRegistered(
            f"handle {handle}: translation still faulting after "
            f"{self.ODP_FAULT_ROUNDS} fault-service rounds (thrashing)")

    def _service_fault(self, fault: TranslationFault) -> None:
        """Suspend the in-flight transfer, have the kernel agent fault
        the pages in, and resume.

        Failure funnels into :class:`NotRegistered` so every call site's
        existing error path completes the descriptor the same way it
        would for an unregistered buffer — except a kill at an ODP crash
        point, which must keep propagating after the engine is unparked.
        """
        kernel = self.kernel
        token = self._next_suspend_token
        self._next_suspend_token += 1
        self.dma_suspensions += 1
        kernel.obs.inc("via.nic.dma_suspensions")
        kernel.clock.charge(kernel.costs.odp_suspend_resume_ns, "via_nic")
        if kernel.events.active:
            kernel.events.emit(DMA_SUSPEND, handle=fault.handle,
                               pages=fault.pages, token=token,
                               va=fault.va, length=fault.length,
                               actor="nic")
        kernel.trace.emit("odp_dma_suspend", nic=self.name,
                          handle=fault.handle, pages=len(fault.pages),
                          token=token)
        try:
            if self.fault_service is None:
                raise NotRegistered(
                    f"{self.name}: translation fault on handle "
                    f"{fault.handle} with no fault service bound")
            self.fault_service(fault.handle, fault.pages, token=token)
        except ProcessKilled:
            self._resume(fault.handle, token, ok=False)
            raise
        except (ViaError, KernelError) as exc:
            # Owner dead, registration gone, range unmapped mid-fault:
            # the transfer cannot make progress — unpark the engine and
            # complete the descriptor through the error path.
            self._resume(fault.handle, token, ok=False)
            raise NotRegistered(
                f"{self.name}: fault service failed for handle "
                f"{fault.handle}: {exc}") from exc
        self._resume(fault.handle, token, ok=True)

    def _resume(self, handle: int, token: int, ok: bool) -> None:
        kernel = self.kernel
        if kernel.events.active:
            kernel.events.emit(DMA_RESUME, handle=handle, token=token,
                               ok=ok, actor="nic")
        kernel.trace.emit("odp_dma_resume", nic=self.name, handle=handle,
                          token=token, ok=ok)

    def _translate_local(self, vi: VirtualInterface, desc: Descriptor
                         ) -> list[tuple[int, int]]:
        """Translate the descriptor's local segments under the VI's tag."""
        segments: list[tuple[int, int]] = []
        for seg in desc.segments:
            segments.extend(self._tpt_translate(
                seg.mem_handle, seg.va, seg.length, vi.prot_tag))
        return segments

    def _fail_send(self, vi: VirtualInterface, desc: Descriptor,
                   status: str) -> None:
        """Complete a send descriptor in error; break the connection for
        reliable modes (VIA spec: errors are connection-fatal there)."""
        self.protection_faults += 1
        self.kernel.obs.inc("via.nic.protection_faults")
        desc.complete(status)
        vi.complete_send(desc)
        self.kernel.trace.emit("via_send_error", nic=self.name,
                               vi=vi.vi_id, status=status)
        if vi.reliability != ReliabilityLevel.UNRELIABLE:
            vi.enter_error()

    def _fail_send_dma(self, vi: VirtualInterface, desc: Descriptor) -> None:
        """Complete a send descriptor whose local DMA faulted."""
        self.dma_faults += 1
        self.kernel.obs.inc("via.nic.dma_faults")
        desc.complete(VIP_ERROR_NIC)
        vi.complete_send(desc)
        self.kernel.trace.emit("via_dma_fault", nic=self.name,
                               vi=vi.vi_id, side="send")
        if vi.reliability != ReliabilityLevel.UNRELIABLE:
            vi.enter_error()

    def _process_send_queue(self, vi: VirtualInterface) -> None:
        while vi.send_queue and vi.state == ViState.CONNECTED:
            desc = vi.send_queue.popleft()
            self._execute_send(vi, desc)

    # -- the reliability protocol (sender side) ------------------------------

    def _transmit_reliable(self, vi: VirtualInterface,
                           packet: Packet) -> str:
        """Transmit with retransmission until ACKed or the retry budget
        is exhausted; returns the receiver's status, or
        ``VIP_ERROR_CONN_LOST`` after giving up."""
        assert self.fabric is not None
        clock = self.kernel.clock
        costs = self.kernel.costs
        trace = self.kernel.trace
        obs = self.kernel.obs
        timeout_ns = costs.retransmit_timeout_ns
        for attempt in range(self.max_retransmits + 1):
            if attempt:
                self.retransmits += 1
                if obs.enabled:
                    obs.metrics.counter("via.nic.retransmits").inc()
                trace.emit("via_retransmit", nic=self.name, vi=vi.vi_id,
                           seq=packet.seq, attempt=attempt)
            outcome = self.fabric.attempt_delivery(self, packet,
                                                   vi.reliability)
            if outcome.kind == "delivered":
                return outcome.status
            if outcome.kind in ("dropped", "ack_lost"):
                # No ACK arrived: wait out the retransmission timer,
                # then back off exponentially (capped).
                clock.charge(timeout_ns, "retransmit")
                if obs.enabled:
                    obs.metrics.counter(
                        "via.nic.backoff_wait_ns").inc(timeout_ns)
                trace.emit("via_retransmit_timeout", nic=self.name,
                           vi=vi.vi_id, seq=packet.seq,
                           waited_ns=timeout_ns, cause=outcome.kind)
                timeout_ns = min(int(timeout_ns * costs.retransmit_backoff),
                                 costs.retransmit_timeout_max_ns)
            # NACK (CRC failure): the receiver asked for an immediate
            # resend — no timer to wait for.
        obs.inc("via.nic.conn_lost")
        trace.emit("via_conn_lost", nic=self.name, vi=vi.vi_id,
                   seq=packet.seq, retries=self.max_retransmits)
        return VIP_ERROR_CONN_LOST

    def _execute_send(self, vi: VirtualInterface, desc: Descriptor) -> None:
        assert self.fabric is not None, "NIC not attached to a fabric"
        assert vi.peer is not None
        dst_nic, dst_vi = vi.peer

        # Local translation + protection.
        try:
            local_segs = self._translate_local(vi, desc)
        except (ProtectionError, NotRegistered) as exc:
            self._fail_send(vi, desc, exc.status)
            return

        if desc.dtype == DescriptorType.RDMA_READ:
            self._execute_rdma_read(vi, desc, local_segs)
            return
        if desc.dtype in ATOMIC_TYPES:
            self._execute_atomic(vi, desc, local_segs)
            return

        try:
            payload = self.dma.read_gather(local_segs)
        except DMAFault:
            self._fail_send_dma(vi, desc)
            return
        packet = Packet(
            kind=desc.dtype, src_nic=self.name, src_vi=vi.vi_id,
            dst_nic=dst_nic, dst_vi=dst_vi, payload=payload,
            immediate=desc.immediate_data,
            remote_handle=desc.remote_handle, remote_va=desc.remote_va)
        if vi.reliability == ReliabilityLevel.UNRELIABLE:
            status = self.fabric.transmit(self, packet, vi.reliability)
        else:
            vi.tx_seq += 1
            packet.seq = vi.tx_seq
            packet.checksum = payload_checksum(payload)
            status = self._transmit_reliable(vi, packet)

        if status == VIP_SUCCESS or vi.reliability == \
                ReliabilityLevel.UNRELIABLE:
            desc.complete(VIP_SUCCESS, len(payload))
            vi.complete_send(desc)
            if self.kernel.obs.enabled:
                self._observe_completion(desc, "send")
            if desc.dtype == DescriptorType.SEND:
                self.sends_completed += 1
            else:
                self.rdma_writes_completed += 1
        else:
            desc.complete(status, 0)
            vi.complete_send(desc)
            vi.enter_error()

    def _execute_rdma_read(self, vi: VirtualInterface, desc: Descriptor,
                           local_segs: list[tuple[int, int]]) -> None:
        assert self.fabric is not None and vi.peer is not None
        dst_nic, dst_vi = vi.peer
        packet = Packet(
            kind=DescriptorType.RDMA_READ, src_nic=self.name,
            src_vi=vi.vi_id, dst_nic=dst_nic, dst_vi=dst_vi,
            remote_handle=desc.remote_handle, remote_va=desc.remote_va,
            read_length=desc.total_length)
        if vi.reliability == ReliabilityLevel.UNRELIABLE:
            status, payload = self.fabric.rdma_read_fetch(self, packet,
                                                          vi.reliability)
        else:
            status, payload = self._fetch_rdma_read_reliable(vi, packet)
        if status != VIP_SUCCESS:
            desc.complete(status, 0)
            vi.complete_send(desc)
            if vi.reliability != ReliabilityLevel.UNRELIABLE:
                vi.enter_error()
            return
        try:
            self.dma.write_scatter(
                _trim_segments(local_segs, len(payload)), payload)
        except DMAFault:
            self._fail_send_dma(vi, desc)
            return
        desc.complete(VIP_SUCCESS, len(payload))
        vi.complete_send(desc)
        if self.kernel.obs.enabled:
            self._observe_completion(desc, "send")
        self.rdma_reads_completed += 1

    def _execute_atomic(self, vi: VirtualInterface, desc: Descriptor,
                        local_segs: list[tuple[int, int]]) -> None:
        """Run one remote atomic round trip and land the original value
        in the descriptor's single local segment."""
        assert self.fabric is not None and vi.peer is not None
        dst_nic, dst_vi = vi.peer
        packet = Packet(
            kind=desc.dtype, src_nic=self.name, src_vi=vi.vi_id,
            dst_nic=dst_nic, dst_vi=dst_vi,
            remote_handle=desc.remote_handle, remote_va=desc.remote_va,
            compare=desc.compare, swap=desc.swap, add=desc.add)
        # Atomics ride the reliable sequence space: the responder's
        # dedup cache is keyed by this seq, so a retransmit after a lost
        # response returns the cached original value, never a re-execute.
        vi.tx_seq += 1
        packet.seq = vi.tx_seq
        status, original = self._fetch_atomic_reliable(vi, packet)
        if status != VIP_SUCCESS:
            desc.complete(status, 0)
            vi.complete_send(desc)
            vi.enter_error()
            return
        try:
            self.dma.write_scatter(
                local_segs, original.to_bytes(ATOMIC_OPERAND_BYTES,
                                              "little"))
        except DMAFault:
            self._fail_send_dma(vi, desc)
            return
        desc.atomic_original_value = original
        desc.complete(VIP_SUCCESS, ATOMIC_OPERAND_BYTES)
        vi.complete_send(desc)
        self.atomics_completed += 1
        obs = self.kernel.obs
        if obs.enabled:
            self._observe_completion(desc, "send")
            obs.metrics.counter("via.atomic.completed").inc()

    def _fetch_atomic_reliable(self, vi: VirtualInterface,
                               packet: Packet) -> tuple[str, int]:
        """Atomic round trip with retransmission.  Unlike RDMA reads a
        retry is *not* a re-execute: the responder answers replayed
        sequence numbers from its response cache."""
        assert self.fabric is not None
        clock = self.kernel.clock
        costs = self.kernel.costs
        trace = self.kernel.trace
        obs = self.kernel.obs
        timeout_ns = costs.retransmit_timeout_ns
        for attempt in range(self.max_retransmits + 1):
            if attempt:
                self.retransmits += 1
                if obs.enabled:
                    obs.metrics.counter("via.nic.retransmits").inc()
                trace.emit("via_retransmit", nic=self.name, vi=vi.vi_id,
                           seq=packet.seq, attempt=attempt,
                           atomic=packet.kind.value)
            outcome, original = self.fabric.attempt_atomic(
                self, packet, vi.reliability)
            if outcome.kind == "delivered":
                return outcome.status, original
            if outcome.kind == "dropped":
                clock.charge(timeout_ns, "retransmit")
                if obs.enabled:
                    obs.metrics.counter(
                        "via.nic.backoff_wait_ns").inc(timeout_ns)
                trace.emit("via_retransmit_timeout", nic=self.name,
                           vi=vi.vi_id, seq=packet.seq,
                           waited_ns=timeout_ns, cause="dropped")
                timeout_ns = min(int(timeout_ns * costs.retransmit_backoff),
                                 costs.retransmit_timeout_max_ns)
            # NACK (corrupt response): resend immediately; the responder
            # dedups the replayed seq.
        obs.inc("via.nic.conn_lost")
        trace.emit("via_conn_lost", nic=self.name, vi=vi.vi_id,
                   seq=packet.seq, retries=self.max_retransmits)
        return VIP_ERROR_CONN_LOST, 0

    def _fetch_rdma_read_reliable(self, vi: VirtualInterface,
                                  packet: Packet) -> tuple[str, bytes]:
        """RDMA-read round trip with retransmission (reads are
        idempotent, so a retry simply re-fetches)."""
        assert self.fabric is not None
        clock = self.kernel.clock
        costs = self.kernel.costs
        trace = self.kernel.trace
        obs = self.kernel.obs
        timeout_ns = costs.retransmit_timeout_ns
        for attempt in range(self.max_retransmits + 1):
            if attempt:
                self.retransmits += 1
                if obs.enabled:
                    obs.metrics.counter("via.nic.retransmits").inc()
                trace.emit("via_retransmit", nic=self.name, vi=vi.vi_id,
                           seq=packet.seq, attempt=attempt, rdma="read")
            outcome, payload = self.fabric.attempt_rdma_read(
                self, packet, vi.reliability)
            if outcome.kind == "delivered":
                return outcome.status, payload
            if outcome.kind == "dropped":
                clock.charge(timeout_ns, "retransmit")
                if obs.enabled:
                    obs.metrics.counter(
                        "via.nic.backoff_wait_ns").inc(timeout_ns)
                trace.emit("via_retransmit_timeout", nic=self.name,
                           vi=vi.vi_id, seq=packet.seq,
                           waited_ns=timeout_ns, cause="dropped")
                timeout_ns = min(int(timeout_ns * costs.retransmit_backoff),
                                 costs.retransmit_timeout_max_ns)
        obs.inc("via.nic.conn_lost")
        trace.emit("via_conn_lost", nic=self.name, vi=vi.vi_id,
                   seq=packet.seq, retries=self.max_retransmits)
        return VIP_ERROR_CONN_LOST, b""

    # --------------------------------------------------------------- delivery side

    def deliver(self, packet: Packet, reliability: ReliabilityLevel) -> str:
        """Accept an inbound packet from the fabric; returns a status the
        fabric relays to the sender."""
        self.check_faults()
        vi = self.vis.get(packet.dst_vi)
        if vi is None or vi.state != ViState.CONNECTED or \
                vi.peer != (packet.src_nic, packet.src_vi):
            return VIP_ERROR_CONN_LOST

        # Deduplicate retransmits on RELIABLE VIs: a sequence number at
        # or below the receive high-water mark was already processed
        # (its ACK was lost, or the fabric duplicated it) — re-ACK
        # without executing it again.
        if reliability != ReliabilityLevel.UNRELIABLE and packet.seq:
            if packet.seq <= vi.rx_seq:
                self.duplicates_dropped += 1
                self.kernel.obs.inc("via.nic.duplicates_dropped")
                self.kernel.trace.emit("via_duplicate", nic=self.name,
                                       vi=vi.vi_id, seq=packet.seq)
                return VIP_SUCCESS

        if packet.kind == DescriptorType.SEND:
            status = self._deliver_send(vi, packet, reliability)
        elif packet.kind == DescriptorType.RDMA_WRITE:
            status = self._deliver_rdma_write(vi, packet, reliability)
        else:
            raise ViaError(f"cannot deliver packet kind {packet.kind}")

        if (status == VIP_SUCCESS
                and reliability != ReliabilityLevel.UNRELIABLE
                and packet.seq):
            vi.rx_seq = packet.seq
        return status

    def _deliver_send(self, vi: VirtualInterface, packet: Packet,
                      reliability: ReliabilityLevel) -> str:
        if not vi.recv_queue:
            # "A receive descriptor ... has to be posted before the
            # sender's data arrives."  Unreliable: silent drop.
            # Reliable: the connection is broken.
            self.recv_drops += 1
            self.kernel.obs.inc("via.nic.recv_drops")
            self.kernel.trace.emit("via_recv_drop", nic=self.name,
                                   vi=vi.vi_id)
            if reliability == ReliabilityLevel.UNRELIABLE:
                return VIP_SUCCESS
            vi.enter_error()
            return VIP_ERROR_CONN_LOST
        desc = vi.recv_queue.popleft()
        if desc.total_length < len(packet.payload):
            desc.complete(VIP_DESCRIPTOR_ERROR, 0)
            vi.complete_recv(desc)
            if reliability == ReliabilityLevel.UNRELIABLE:
                return VIP_SUCCESS
            vi.enter_error()
            return VIP_DESCRIPTOR_ERROR
        try:
            segs = self._translate_local(vi, desc)
        except (ProtectionError, NotRegistered) as exc:
            self.protection_faults += 1
            desc.complete(exc.status, 0)
            vi.complete_recv(desc)
            if reliability == ReliabilityLevel.UNRELIABLE:
                return VIP_SUCCESS
            vi.enter_error()
            return exc.status
        try:
            self.dma.write_scatter(
                _trim_segments(segs, len(packet.payload)), packet.payload)
        except DMAFault:
            self.dma_faults += 1
            desc.complete(VIP_ERROR_NIC, 0)
            vi.complete_recv(desc)
            self.kernel.trace.emit("via_dma_fault", nic=self.name,
                                   vi=vi.vi_id, side="recv")
            if reliability == ReliabilityLevel.UNRELIABLE:
                return VIP_SUCCESS
            vi.enter_error()
            return VIP_ERROR_NIC
        desc.received_immediate = packet.immediate
        desc.complete(VIP_SUCCESS, len(packet.payload))
        self.kernel.clock.charge(self.kernel.costs.completion_post_ns,
                                 "via_nic")
        vi.complete_recv(desc)
        if self.kernel.obs.enabled:
            self._observe_completion(desc, "recv")
        self.recvs_completed += 1
        return VIP_SUCCESS

    def _deliver_rdma_write(self, vi: VirtualInterface, packet: Packet,
                            reliability: ReliabilityLevel) -> str:
        assert packet.remote_handle is not None
        assert packet.remote_va is not None
        try:
            segs = self._tpt_translate(
                packet.remote_handle, packet.remote_va,
                len(packet.payload), vi.prot_tag, rdma_write=True)
        except (ProtectionError, NotRegistered) as exc:
            self.protection_faults += 1
            self.kernel.trace.emit("via_rdma_protfault", nic=self.name,
                                   vi=vi.vi_id, status=exc.status)
            if reliability == ReliabilityLevel.UNRELIABLE:
                return VIP_SUCCESS
            vi.enter_error()
            return exc.status
        try:
            self.dma.write_scatter(segs, packet.payload)
        except DMAFault:
            self.dma_faults += 1
            self.kernel.trace.emit("via_dma_fault", nic=self.name,
                                   vi=vi.vi_id, side="rdma_write")
            if reliability == ReliabilityLevel.UNRELIABLE:
                return VIP_SUCCESS
            vi.enter_error()
            return VIP_ERROR_NIC
        # Immediate data makes the RDMA write visible to the receiver by
        # consuming one receive descriptor (VIA spec §2.2.2).
        if packet.immediate is not None:
            if not vi.recv_queue:
                self.recv_drops += 1
                if reliability == ReliabilityLevel.UNRELIABLE:
                    return VIP_SUCCESS
                vi.enter_error()
                return VIP_ERROR_CONN_LOST
            desc = vi.recv_queue.popleft()
            desc.received_immediate = packet.immediate
            desc.complete(VIP_SUCCESS, 0)
            vi.complete_recv(desc)
        return VIP_SUCCESS

    def serve_rdma_read(self, packet: Packet,
                        reliability: ReliabilityLevel
                        ) -> tuple[str, bytes]:
        """Serve an inbound RDMA-read request: translate and fetch."""
        self.check_faults()
        vi = self.vis.get(packet.dst_vi)
        if vi is None or vi.state != ViState.CONNECTED or \
                vi.peer != (packet.src_nic, packet.src_vi):
            return VIP_ERROR_CONN_LOST, b""
        assert packet.remote_handle is not None
        assert packet.remote_va is not None
        try:
            segs = self._tpt_translate(
                packet.remote_handle, packet.remote_va,
                packet.read_length, vi.prot_tag, rdma_read=True)
        except (ProtectionError, NotRegistered) as exc:
            self.protection_faults += 1
            if reliability != ReliabilityLevel.UNRELIABLE:
                vi.enter_error()
            return exc.status, b""
        try:
            return VIP_SUCCESS, self.dma.read_gather(segs)
        except DMAFault:
            self.dma_faults += 1
            self.kernel.trace.emit("via_dma_fault", nic=self.name,
                                   vi=vi.vi_id, side="rdma_read")
            if reliability != ReliabilityLevel.UNRELIABLE:
                vi.enter_error()
            return VIP_ERROR_NIC, b""

    def serve_atomic(self, packet: Packet,
                     reliability: ReliabilityLevel) -> tuple[str, int]:
        """Serve an inbound atomic request; returns ``(status,
        original_value)``.

        The idempotency guard lives here: a sequence number already
        answered is served from the VI's bounded response cache without
        touching memory — the retransmit path may replay an atomic whose
        response was lost *after* the RMW executed, and re-executing it
        would double-apply a FETCH_ADD or mis-judge a CMPSWAP.
        """
        self.check_faults()
        vi = self.vis.get(packet.dst_vi)
        if vi is None or vi.state != ViState.CONNECTED or \
                vi.peer != (packet.src_nic, packet.src_vi):
            return VIP_ERROR_CONN_LOST, 0
        obs = self.kernel.obs
        if reliability != ReliabilityLevel.UNRELIABLE and packet.seq:
            cached = vi.atomic_responses.get(packet.seq)
            if cached is not None:
                self.duplicates_dropped += 1
                self.atomic_replays += 1
                obs.inc("via.atomic.replays")
                self.kernel.trace.emit("via_atomic_replay", nic=self.name,
                                       vi=vi.vi_id, seq=packet.seq)
                return cached
        response = self._serve_atomic_fresh(vi, packet, reliability)
        if reliability != ReliabilityLevel.UNRELIABLE and packet.seq:
            cache = vi.atomic_responses
            cache[packet.seq] = response
            if len(cache) > ATOMIC_RESPONSE_CACHE:
                for seq in sorted(cache)[:len(cache)
                                         - ATOMIC_RESPONSE_CACHE]:
                    del cache[seq]
        return response

    def _atomic_word_resident(self, frame: int) -> bool:
        """Is ``frame`` held resident on someone's behalf?

        Pin-based backends (kiobuf, the paper's proposal) raise the
        frame's ``pin_count``; the mlock-style backends instead keep the
        page resident through a ``VM_LOCKED`` mapping, so the RMW unit
        accepts either.  A word whose pins were annulled *and* whose
        mapping lost ``VM_LOCKED`` (the §3.2 naive-munlock hazard) is
        refused.
        """
        page = self.kernel.pagemap.page(frame)
        if page.pin_count > 0:
            return True
        mapping = page.mapping
        if mapping is None:
            return False
        pid, vpn = mapping
        for task in self.kernel.tasks:
            if task.pid == pid:
                vma = task.vmas.find(vpn)
                return vma is not None and bool(vma.flags & VM_LOCKED)
        return False

    def _serve_atomic_fresh(self, vi: VirtualInterface, packet: Packet,
                            reliability: ReliabilityLevel
                            ) -> tuple[str, int]:
        """Validate, serialize, and execute one not-yet-seen atomic."""
        assert packet.remote_handle is not None
        assert packet.remote_va is not None
        trace = self.kernel.trace
        obs = self.kernel.obs

        def reject(status: str, reason: str) -> tuple[str, int]:
            self.atomic_rejects += 1
            obs.inc("via.atomic.rejects")
            trace.emit("via_atomic_reject", nic=self.name, vi=vi.vi_id,
                       reason=reason, va=packet.remote_va, status=status)
            if reliability != ReliabilityLevel.UNRELIABLE:
                vi.enter_error()
            return status, 0

        if packet.remote_va % ATOMIC_OPERAND_BYTES:
            return reject(VIP_INVALID_PARAMETER, "misaligned")
        try:
            segs = self._tpt_translate(
                packet.remote_handle, packet.remote_va,
                ATOMIC_OPERAND_BYTES, vi.prot_tag, rdma_atomic=True)
        except (ProtectionError, NotRegistered) as exc:
            self.protection_faults += 1
            return reject(exc.status, "protection")
        addr = segs[0][0]
        # Residency check: unlike fire-and-forget DMA (which must stay
        # "unhelpful", per the paper), an atomic is a round-trip verb
        # served by the adapter's RMW unit, which refuses to operate on
        # a word whose frame is no longer held resident for DMA.
        frame, _offset = PhysicalMemory.split_phys(addr)
        if not self._atomic_word_resident(frame):
            return reject(VIP_INVALID_MEMORY, "unpinned")

        # Per-word serialization via the sim clock: if another atomic's
        # contention window on this word is still open, stall until it
        # closes.
        clock = self.kernel.clock
        now = clock.now_ns
        busy_until = self._atomic_busy.get(addr, 0)
        if busy_until > now:
            wait_ns = busy_until - now
            clock.charge(wait_ns, "atomic_wait")
            obs.inc("via.atomic.contended")
            if obs.enabled:
                obs.metrics.histogram("via.atomic.wait_ns").observe(
                    wait_ns)

        kind = packet.kind
        compare, swap, add = packet.compare, packet.swap, packet.add

        def rmw(old: int) -> int:
            if kind == DescriptorType.ATOMIC_CMPSWAP:
                assert compare is not None and swap is not None
                return swap if old == compare else old
            assert add is not None
            return old + add

        try:
            original = self.dma.atomic_rmw(addr, rmw)
        except DMAFault:
            self.dma_faults += 1
            trace.emit("via_dma_fault", nic=self.name, vi=vi.vi_id,
                       side="atomic")
            if reliability != ReliabilityLevel.UNRELIABLE:
                vi.enter_error()
            return VIP_ERROR_NIC, 0
        self._atomic_busy[addr] = (
            clock.now_ns + self.kernel.costs.atomic_contention_window_ns)
        self.atomics_served += 1
        if obs.enabled:
            obs.metrics.counter("via.atomic.served").inc()
            obs.metrics.counter(f"via.atomic.{kind.value}").inc()
        return VIP_SUCCESS, original


def _trim_segments(segments: list[tuple[int, int]],
                   nbytes: int) -> list[tuple[int, int]]:
    """Clip a segment list to its first ``nbytes`` bytes (payload shorter
    than the posted buffer)."""
    out: list[tuple[int, int]] = []
    remaining = nbytes
    for addr, length in segments:
        if remaining <= 0:
            break
        n = min(length, remaining)
        out.append((addr, n))
        remaining -= n
    if remaining > 0:
        raise DescriptorError(
            f"segments cover {nbytes - remaining} bytes, need {nbytes}")
    return out
