"""VIA constants: status codes, enums, limits.

Names follow the Virtual Interface Architecture Specification V1.0
(Intel/Compaq/Microsoft, Dec 1997) and Intel's VIPL implementation guide,
which the paper and its companion articles cite.
"""

from __future__ import annotations

import enum

# -- VIP status codes ---------------------------------------------------------

VIP_SUCCESS = "VIP_SUCCESS"
VIP_NOT_DONE = "VIP_NOT_DONE"
VIP_INVALID_PARAMETER = "VIP_INVALID_PARAMETER"
VIP_ERROR_RESOURCE = "VIP_ERROR_RESOURCE"
VIP_PROTECTION_ERROR = "VIP_PROTECTION_ERROR"
VIP_INVALID_MEMORY = "VIP_INVALID_MEMORY"
VIP_INVALID_STATE = "VIP_INVALID_STATE"
VIP_ERROR_CONN_LOST = "VIP_ERROR_CONN_LOST"
VIP_DESCRIPTOR_ERROR = "VIP_DESCRIPTOR_ERROR"
VIP_ERROR_NIC = "VIP_ERROR_NIC"


class DescriptorType(enum.Enum):
    """The VIA data-transfer operations."""

    SEND = "send"
    RECV = "recv"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"
    ATOMIC_CMPSWAP = "atomic_cmpswap"
    ATOMIC_FETCHADD = "atomic_fetchadd"


#: The remote-atomic descriptor types (compare-and-swap, fetch-and-add).
ATOMIC_TYPES = frozenset({DescriptorType.ATOMIC_CMPSWAP,
                          DescriptorType.ATOMIC_FETCHADD})


class ReliabilityLevel(enum.Enum):
    """VI connection reliability levels (VIA spec §2.4)."""

    UNRELIABLE = "unreliable"
    RELIABLE_DELIVERY = "reliable_delivery"
    RELIABLE_RECEPTION = "reliable_reception"


class ViState(enum.Enum):
    """VI connection state machine (simplified to the states the
    experiments exercise)."""

    IDLE = "idle"
    CONNECTED = "connected"
    ERROR = "error"


#: Maximum scatter/gather segments per descriptor (typical HW limit).
MAX_SEGMENTS = 8

#: Maximum bytes of immediate data a descriptor can carry (VIA spec: the
#: descriptor's ImmediateData field is 32 bits).
IMMEDIATE_DATA_BYTES = 4

#: Remote atomics operate on one naturally-aligned 64-bit word.
ATOMIC_OPERAND_BYTES = 8

#: Atomic operands and target words are 64-bit; FETCH_ADD wraps mod 2^64.
ATOMIC_OPERAND_MASK = (1 << 64) - 1

#: Responder-side atomic responses cached per VI for retransmit dedup.
#: The reliable request/response exchange is synchronous (one atomic in
#: flight per VI), so only the most recent sequence numbers can ever be
#: replayed; a small bound keeps the cache O(1).
ATOMIC_RESPONSE_CACHE = 32

#: Default TPT capacity, in page entries.
DEFAULT_TPT_ENTRIES = 8192

#: Default capacity of the NIC's translation cache, in cached spans
#: (0 disables caching — the legacy per-packet walk).
DEFAULT_TRANSLATION_CACHE_ENTRIES = 1024

#: Retransmission attempts a RELIABLE VI makes before declaring the
#: connection lost (the original transmission is not counted).
MAX_RETRANSMITS = 7
