"""A simulated Virtual Interface Architecture (VIA 1.0-style) stack.

Layers, bottom-up:

* :mod:`repro.via.tpt` — the NIC's Translation and Protection Table;
* :mod:`repro.via.descriptor` — send/receive/RDMA descriptors;
* :mod:`repro.via.vi` / :mod:`repro.via.cq` — Virtual Interfaces, work
  queues, doorbells, completion queues;
* :mod:`repro.via.nic` — descriptor processing, protection checks, DMA;
* :mod:`repro.via.fabric` — the interconnect between NICs;
* :mod:`repro.via.locking` — the memory-locking backends: the four the
  paper compares plus the on-demand-paging (ODP) extension;
* :mod:`repro.via.kernel_agent` — the VI Kernel Agent (driver);
* :mod:`repro.via.user_agent` — the VI User Agent (VIPL-flavoured API);
* :mod:`repro.via.machine` — a host (kernel + NICs) and clusters.
"""

from repro.via.constants import (
    VIP_SUCCESS, VIP_NOT_DONE, DescriptorType, ReliabilityLevel, ViState,
)
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.tpt import MemoryRegion, TranslationProtectionTable
from repro.via.vi import VirtualInterface
from repro.via.cq import CompletionQueue
from repro.via.nic import VIANic
from repro.via.fabric import Fabric
from repro.via.kernel_agent import KernelAgent, Registration
from repro.via.user_agent import UserAgent
from repro.via.machine import Cluster, Machine

__all__ = [
    "VIP_SUCCESS", "VIP_NOT_DONE", "DescriptorType", "ReliabilityLevel",
    "ViState", "DataSegment", "Descriptor", "MemoryRegion",
    "TranslationProtectionTable", "VirtualInterface", "CompletionQueue",
    "VIANic", "Fabric", "KernelAgent", "Registration", "UserAgent",
    "Cluster", "Machine",
]
