"""The VI User Agent — a VIPL-flavoured user-level API.

One :class:`UserAgent` binds one task to one NIC (via its Kernel Agent)
and exposes the operations user code performs: memory registration,
VI/CQ creation, posting descriptors, and polling for completion.  Method
names follow Intel's VIPL ("Virtual Interface Provider Library") with
snake_case spellings; ``Vip*`` aliases are provided for readers coming
from the spec.

After setup, the data path (:meth:`post_send`, :meth:`post_recv`,
:meth:`send_done`, ...) involves **no kernel calls** — the point of the
VI Architecture.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import QueueEmpty
from repro.via.constants import ReliabilityLevel
from repro.via.cq import Completion, CompletionQueue
from repro.via.descriptor import DataSegment, Descriptor
from repro.via.kernel_agent import KernelAgent, Registration
from repro.via.vi import VirtualInterface

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.task import Task


class UserAgent:
    """User-level handle on one NIC for one task."""

    def __init__(self, agent: KernelAgent, task: "Task") -> None:
        self.agent = agent
        self.task = task
        self.nic = agent.nic
        self.prot_tag = agent.open_nic(task)

    # ------------------------------------------------------- memory management

    def register_mem(self, va: int, nbytes: int, rdma_write: bool = False,
                     rdma_read: bool = False,
                     rdma_atomic: bool = False) -> Registration:
        """``VipRegisterMem``: register (and pin) a buffer."""
        return self.agent.register_memory(self.task, va, nbytes,
                                          rdma_write=rdma_write,
                                          rdma_read=rdma_read,
                                          rdma_atomic=rdma_atomic)

    def deregister_mem(self, reg: Registration | int) -> None:
        """``VipDeregisterMem``."""
        handle = reg if isinstance(reg, int) else reg.handle
        self.agent.deregister_memory(handle)

    # ----------------------------------------------------------------- VIs/CQs

    def create_cq(self, depth: int = 1024) -> CompletionQueue:
        """``VipCreateCQ`` (the CQ reports depth/overflow metrics to the
        kernel's observability when it is enabled, and completion
        observations to the kernel's analysis stream when it is armed)."""
        return CompletionQueue(depth, obs=self.agent.kernel.obs,
                               events=self.agent.kernel.events)

    def create_vi(self, reliability: ReliabilityLevel =
                  ReliabilityLevel.RELIABLE_DELIVERY,
                  send_cq: CompletionQueue | None = None,
                  recv_cq: CompletionQueue | None = None
                  ) -> VirtualInterface:
        """``VipCreateVi``."""
        return self.agent.create_vi(self.task, reliability=reliability,
                                    send_cq=send_cq, recv_cq=recv_cq)

    # -------------------------------------------------------- connection setup

    def connect_wait(self, vi: VirtualInterface,
                     discriminator: bytes) -> None:
        """``VipConnectWait``: park ``vi`` as a server under
        ``discriminator`` on this NIC."""
        assert self.nic.fabric is not None
        self.nic.fabric.connmgr.listen(self.nic, vi, discriminator)

    def connect_request(self, vi: VirtualInterface, remote_nic_name: str,
                        discriminator: bytes) -> None:
        """``VipConnectRequest``: connect ``vi`` to the server listening
        at ``(remote_nic_name, discriminator)``."""
        assert self.nic.fabric is not None
        self.nic.fabric.connmgr.connect_request(
            self.nic, vi, remote_nic_name, discriminator)

    # ----------------------------------------------------------------- posting

    def post_send(self, vi: VirtualInterface, desc: Descriptor) -> None:
        """``VipPostSend`` — user-level, no kernel call."""
        self.nic.post_send(vi.vi_id, desc, self.task.pid)

    def post_recv(self, vi: VirtualInterface, desc: Descriptor) -> None:
        """``VipPostRecv``."""
        self.nic.post_recv(vi.vi_id, desc, self.task.pid)

    def post_send_many(self, vi: VirtualInterface,
                       descs: "list[Descriptor]") -> int:
        """Batched ``VipPostSend`` — one doorbell for a descriptor list
        (see :meth:`repro.via.nic.VIANic.post_send_many`)."""
        return self.nic.post_send_many(vi.vi_id, descs, self.task.pid)

    def post_recv_many(self, vi: VirtualInterface,
                       descs: "list[Descriptor]") -> int:
        """Batched ``VipPostRecv``."""
        return self.nic.post_recv_many(vi.vi_id, descs, self.task.pid)

    # ---------------------------------------------------------------- completion

    def send_done(self, vi: VirtualInterface) -> Descriptor:
        """``VipSendDone``: pop the next completed send descriptor.

        Raises :class:`~repro.errors.QueueEmpty` when none is ready
        (``VIP_NOT_DONE``)."""
        if not vi.send_done:
            raise QueueEmpty(f"VI {vi.vi_id}: no completed send")
        return vi.send_done.popleft()

    def recv_done(self, vi: VirtualInterface) -> Descriptor:
        """``VipRecvDone``: pop the next completed receive descriptor."""
        if not vi.recv_done:
            raise QueueEmpty(f"VI {vi.vi_id}: no completed receive")
        return vi.recv_done.popleft()

    def send_wait(self, vi: VirtualInterface) -> Descriptor:
        """``VipSendWait``: blocking-wait variant of :meth:`send_done`.

        Costs a kernel trap plus a reschedule on top of the completion —
        the price MPI/Pro's waiting mode paid versus ScaMPI's polling
        (this collection's comparison paper measured the difference as
        tens of microseconds of added latency)."""
        kernel = self.agent.kernel
        kernel.clock.charge(kernel.costs.syscall_ns, "via_cpu")
        kernel.clock.charge(kernel.costs.reschedule_ns, "via_cpu")
        return self.send_done(vi)

    def recv_wait(self, vi: VirtualInterface) -> Descriptor:
        """``VipRecvWait``: blocking-wait variant of :meth:`recv_done`."""
        kernel = self.agent.kernel
        kernel.clock.charge(kernel.costs.syscall_ns, "via_cpu")
        kernel.clock.charge(kernel.costs.reschedule_ns, "via_cpu")
        return self.recv_done(vi)

    def cq_done(self, cq: CompletionQueue) -> Completion:
        """``VipCQDone``: pop the next completion from a CQ."""
        completion = cq.poll()
        if completion is None:
            raise QueueEmpty("completion queue empty")
        return completion

    # -------------------------------------------------------------- conveniences

    def segment(self, reg: Registration, va: int | None = None,
                length: int | None = None) -> DataSegment:
        """Build a :class:`DataSegment` inside a registration (defaults
        to the whole region)."""
        if va is None:
            va = reg.va
        if length is None:
            length = reg.nbytes - (va - reg.va)
        return DataSegment(reg.handle, va, length)

    def send_bytes(self, vi: VirtualInterface, reg: Registration,
                   data: bytes, offset: int = 0) -> Descriptor:
        """Write ``data`` into the registered buffer and post a send for
        exactly those bytes.  Returns the posted descriptor."""
        va = reg.va + offset
        self.task.write(va, data)
        desc = Descriptor.send([DataSegment(reg.handle, va, len(data))])
        self.post_send(vi, desc)
        return desc

    def atomic_cmpswap(self, vi: VirtualInterface, reg: Registration,
                       remote_handle: int, remote_va: int, compare: int,
                       swap: int, local_offset: int = 0) -> Descriptor:
        """Post a remote compare-and-swap and return the completed
        descriptor; the original value is in ``atomic_original_value``
        (and in the local 8-byte landing at ``reg.va + local_offset``)."""
        seg = DataSegment(reg.handle, reg.va + local_offset, 8)
        desc = Descriptor.atomic_cmpswap([seg], remote_handle, remote_va,
                                         compare, swap)
        self.post_send(vi, desc)
        return desc

    def atomic_fetchadd(self, vi: VirtualInterface, reg: Registration,
                        remote_handle: int, remote_va: int, add: int,
                        local_offset: int = 0) -> Descriptor:
        """Post a remote fetch-and-add and return the completed
        descriptor (see :meth:`atomic_cmpswap`)."""
        seg = DataSegment(reg.handle, reg.va + local_offset, 8)
        desc = Descriptor.atomic_fetchadd([seg], remote_handle, remote_va,
                                          add)
        self.post_send(vi, desc)
        return desc

    def recv_bytes(self, vi: VirtualInterface, desc: Descriptor) -> bytes:
        """Read the payload a completed receive descriptor landed in
        (through the *process's* page tables — so a stale-TPT DMA write
        is invisible here, exactly as in the paper)."""
        out = bytearray()
        remaining = desc.length_transferred
        for seg in desc.segments:
            if remaining <= 0:
                break
            n = min(seg.length, remaining)
            out += self.task.read(seg.va, n)
            remaining -= n
        return bytes(out)


# VIPL-style aliases, for readers following the specification text.
UserAgent.VipRegisterMem = UserAgent.register_mem      # type: ignore[attr-defined]
UserAgent.VipDeregisterMem = UserAgent.deregister_mem  # type: ignore[attr-defined]
UserAgent.VipCreateVi = UserAgent.create_vi            # type: ignore[attr-defined]
UserAgent.VipPostSend = UserAgent.post_send            # type: ignore[attr-defined]
UserAgent.VipPostRecv = UserAgent.post_recv            # type: ignore[attr-defined]
UserAgent.VipSendDone = UserAgent.send_done            # type: ignore[attr-defined]
UserAgent.VipRecvDone = UserAgent.recv_done            # type: ignore[attr-defined]
