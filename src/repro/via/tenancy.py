"""Multi-tenant registration service: pinned-memory quotas and admission.

The paper's §3 mechanisms all assume a cooperative single user; the
moment several uids share one NIC, pinned communication memory becomes
the contended resource NP-RDMA warns about — an unprivileged tenant can
register until the host has no reclaimable memory left.  This module is
the budget layer the Kernel Agent consults before any pin is taken:

* every tenant (keyed by uid, like ``RLIMIT_MEMLOCK``) has a pinned-page
  budget, and the host has a physical-pin ceiling shared by all tenants;
* :meth:`TenantService.admit` gates each registration.  Over-budget
  requests are not rejected immediately — admission *degrades* first:
  shed unused registration-cache entries (tenant-local for a quota
  shortage, everyone's for a host shortage), draft the orphan reaper,
  and back off in simulated time to let in-flight teardown settle.
  Only when the budget is still short after ``max_admission_attempts``
  rounds does the request fail, with a typed error
  (:class:`~repro.errors.QuotaExceeded` /
  :class:`~repro.errors.PinCeilingExceeded`) whose
  ``VIP_ERROR_RESOURCE`` status rides the existing resource-pressure
  recovery paths (regcache retry, protocol degrade-to-copy);
* accounting is charged/credited by the Kernel Agent as registration
  records appear and disappear, so the service's view is exactly "pages
  backed by a live registration record" — the reaper's reclamations and
  the exit path's deregistrations credit tenants automatically.

Observability (all under ``obs.enabled``): ``tenant.<uid>.pinned_pages``
gauges, ``via.admission.{accepted,denied,degraded}`` counters, and a
``via.admission.wait_ns`` histogram of time spent inside the degrade
ladder.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import PinCeilingExceeded, QuotaExceeded

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.regcache import RegistrationCache
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task
    from repro.via.kernel_agent import KernelAgent, Registration


@dataclass
class TenantAccount:
    """One tenant's budget and usage, plus its admission history."""

    uid: int
    #: explicit per-tenant budget; None = inherit the service default
    quota_pages: int | None = None
    pinned_pages: int = 0
    peak_pinned_pages: int = 0
    registrations: int = 0       #: live registration records
    accepted: int = 0
    denied: int = 0
    degraded: int = 0            #: accepted, but only after shedding/backoff
    wait_ns: int = 0             #: total simulated time spent in backoff
    #: a quota reload left usage above the new budget; live pins are
    #: never revoked, so the flag stands until :meth:`~TenantService.credit`
    #: drains usage back under the budget
    over_budget: bool = False
    quota_reloads: int = 0       #: :meth:`~TenantService.set_quota` calls


class TenantService:
    """Per-uid pinned-memory accounting and admission control for one
    Kernel Agent.

    Defaults are fully open (no quota, no ceiling) so single-tenant
    setups pay nothing; budgets arrive via the constructor knobs or
    :meth:`set_quota`.
    """

    def __init__(self, kernel: "Kernel", *,
                 default_quota_pages: int | None = None,
                 host_ceiling_pages: int | None = None,
                 max_admission_attempts: int = 3,
                 admission_backoff_ns: int = 50_000) -> None:
        if default_quota_pages is not None and default_quota_pages < 0:
            raise ValueError(
                f"default_quota_pages must be >= 0, got "
                f"{default_quota_pages}")
        if host_ceiling_pages is not None and host_ceiling_pages < 0:
            raise ValueError(
                f"host_ceiling_pages must be >= 0, got "
                f"{host_ceiling_pages}")
        self.kernel = kernel
        self.default_quota_pages = default_quota_pages
        self.host_ceiling_pages = host_ceiling_pages
        self.max_admission_attempts = max_admission_attempts
        self.admission_backoff_ns = admission_backoff_ns
        self.accounts: dict[int, TenantAccount] = {}
        self.total_pinned_pages = 0
        self.peak_total_pinned_pages = 0
        #: pid → uid, recorded at open/admission time and kept after the
        #: pid dies so the reaper can attribute posthumous reclamation
        self._pid_uids: dict[int, int] = {}
        #: per-uid registration-cache shards (admission sheds these)
        self._caches: dict[int, list["RegistrationCache"]] = {}

    # ------------------------------------------------------------- accounts

    def account(self, uid: int) -> TenantAccount:
        """The tenant's account (created on first touch)."""
        acct = self.accounts.get(uid)
        if acct is None:
            acct = self.accounts[uid] = TenantAccount(uid=uid)
        return acct

    def set_quota(self, uid: int, pages: int | None, *,
                  shed: bool = False) -> int:
        """Hot-reload one tenant's pinned-page budget (None = back to
        the service default).

        Safe at any point in the tenant's lifetime, including while its
        usage exceeds the new budget: live registrations are never
        revoked.  Instead the account is marked
        :attr:`~TenantAccount.over_budget`, the next :meth:`admit`
        enters the degrade ladder immediately (shed, reap, back off)
        rather than fast-pathing, and :meth:`credit` clears the flag
        once deregistrations drain usage back under the budget.  With
        ``shed=True`` the tenant's unused regcache entries are shed
        right now, toward the deficit.

        Returns the remaining deficit in pages (0 = within budget).
        """
        if pages is not None and pages < 0:
            raise ValueError(f"quota must be >= 0, got {pages}")
        acct = self.account(uid)
        acct.quota_pages = pages
        acct.quota_reloads += 1
        effective = self.quota_of(uid)
        deficit = (0 if effective is None
                   else max(0, acct.pinned_pages - effective))
        freed = 0
        if deficit and shed:
            freed = self._shed_caches(deficit, uid=uid)
            # Shedding deregisters through the normal credit() path, so
            # the account is already up to date — recompute.
            deficit = max(0, acct.pinned_pages - effective)
        acct.over_budget = deficit > 0
        self.kernel.trace.emit(
            "quota_reload", uid=uid, quota_pages=effective,
            pinned_pages=acct.pinned_pages, deficit_pages=deficit,
            shed_pages=freed)
        obs = self.kernel.obs
        if obs.enabled:
            obs.metrics.gauge(f"tenant.{uid}.over_budget").set(
                int(acct.over_budget))
        return deficit

    def quota_of(self, uid: int) -> int | None:
        """The effective budget for ``uid`` (None = unlimited)."""
        acct = self.accounts.get(uid)
        if acct is not None and acct.quota_pages is not None:
            return acct.quota_pages
        return self.default_quota_pages

    def note_task(self, task: "Task") -> None:
        """Remember the pid→uid binding (survives the pid's death, for
        posthumous attribution)."""
        self._pid_uids[task.pid] = task.uid

    def uid_of(self, pid: int) -> int | None:
        """The uid a pid belongs (or belonged) to, if ever seen."""
        return self._pid_uids.get(pid)

    # ----------------------------------------------------- regcache shards

    def attach_cache(self, cache: "RegistrationCache") -> None:
        """Register a per-tenant regcache shard; admission pressure can
        shed its unused entries."""
        self._caches.setdefault(cache.task.uid, []).append(cache)

    def _alive(self, pid: int) -> bool:
        return any(t.pid == pid for t in self.kernel.tasks)

    def _shed_caches(self, need_pages: int,
                     uid: int | None = None) -> int:
        """Evict unused cached registrations until ``need_pages`` pinned
        pages were released (tenant-local when ``uid`` is given, global
        otherwise).  Shards that emptied after their owner died are
        dropped.  Returns pages actually released."""
        freed = 0
        for u in ([uid] if uid is not None else list(self._caches)):
            shards = self._caches.get(u)
            if shards is None:
                continue
            for cache in list(shards):
                if freed < need_pages:
                    freed += cache.shed(need_pages - freed)
                if (cache.cached_regions == 0
                        and not self._alive(cache.task.pid)):
                    shards.remove(cache)
            if not shards:
                self._caches.pop(u, None)
        return freed

    def purge_dead_caches(self) -> int:
        """Shed everything unused from shards whose owner is dead and
        drop the emptied shards; returns pinned pages released.  The
        soak harness calls this after kill churn so a tenant's budget is
        not held hostage by a predecessor's cache."""
        freed = 0
        for u in list(self._caches):
            shards = self._caches[u]
            for cache in list(shards):
                if self._alive(cache.task.pid):
                    continue
                freed += cache.shed(None)
                if cache.cached_regions == 0:
                    shards.remove(cache)
            if not shards:
                del self._caches[u]
        return freed

    # ------------------------------------------------------------ admission

    def admit(self, task: "Task", npages: int) -> int:
        """Admission gate for one registration of ``npages`` pages.

        Returns the simulated nanoseconds spent waiting (0 on the fast
        path).  Raises :class:`~repro.errors.QuotaExceeded` or
        :class:`~repro.errors.PinCeilingExceeded` when the degrade
        ladder could not free enough budget.
        """
        self.note_task(task)
        acct = self.account(task.uid)
        quota = self.quota_of(task.uid)
        ceiling = self.host_ceiling_pages
        if quota is None and ceiling is None:
            acct.accepted += 1
            self._publish_admission()
            return 0
        waited_ns = 0
        attempts = 0
        degraded = False
        while True:
            over_quota = (quota is not None
                          and acct.pinned_pages + npages > quota)
            over_host = (ceiling is not None
                         and self.total_pinned_pages + npages > ceiling)
            if not over_quota and not over_host:
                break
            if attempts >= self.max_admission_attempts:
                acct.denied += 1
                acct.wait_ns += waited_ns
                self._publish_admission(denied=True, waited_ns=waited_ns)
                self.kernel.trace.emit(
                    "admission_denied", uid=task.uid, pid=task.pid,
                    npages=npages, tenant_pinned=acct.pinned_pages,
                    host_pinned=self.total_pinned_pages,
                    reason="quota" if over_quota else "ceiling")
                if over_quota:
                    raise QuotaExceeded(
                        f"uid {task.uid}: registering {npages} pages "
                        f"would exceed its quota of {quota} "
                        f"(currently {acct.pinned_pages} pinned)",
                        uid=task.uid, requested_pages=npages,
                        limit_pages=quota,
                        pinned_pages=acct.pinned_pages)
                raise PinCeilingExceeded(
                    f"host: registering {npages} pages for uid "
                    f"{task.uid} would exceed the pin ceiling of "
                    f"{ceiling} (currently {self.total_pinned_pages} "
                    f"pinned)",
                    uid=task.uid, requested_pages=npages,
                    limit_pages=ceiling,
                    pinned_pages=self.total_pinned_pages)
            attempts += 1
            degraded = True
            # Degrade ladder: shed cached-but-unused registrations —
            # the tenant's own shards first (its quota, its caches); a
            # host-level shortage sheds everyone's and drafts the
            # reaper, because the shortfall may be a dead pid's leak.
            freed = self._shed_caches(npages, uid=task.uid)
            if over_host:
                if freed < npages:
                    self._shed_caches(npages - freed)
                reaper = self.kernel.reaper
                if reaper is not None and not reaper._in_scan:
                    reaper.scan()
            wait = self.admission_backoff_ns * (2 ** (attempts - 1))
            self.kernel.clock.charge(wait, "admission_wait")
            waited_ns += wait
        acct.accepted += 1
        if degraded:
            acct.degraded += 1
            self.kernel.trace.emit(
                "admission_degraded", uid=task.uid, pid=task.pid,
                npages=npages, waited_ns=waited_ns, attempts=attempts)
        acct.wait_ns += waited_ns
        self._publish_admission(degraded=degraded, waited_ns=waited_ns)
        return waited_ns

    # ----------------------------------------------------------- accounting

    def charge(self, reg: "Registration") -> None:
        """A registration record now exists: charge its tenant."""
        acct = self.account(reg.uid)
        npages = reg.region.npages
        acct.pinned_pages += npages
        acct.registrations += 1
        acct.peak_pinned_pages = max(acct.peak_pinned_pages,
                                     acct.pinned_pages)
        self.total_pinned_pages += npages
        self.peak_total_pinned_pages = max(self.peak_total_pinned_pages,
                                           self.total_pinned_pages)
        self._publish_account(acct)

    def credit(self, reg: "Registration") -> None:
        """A registration record is gone: credit its tenant.  (A leaked
        *pin* past this point is the reaper's problem, not the budget's
        — the budget tracks records, which is what admission can see.)"""
        acct = self.account(reg.uid)
        npages = reg.region.npages
        acct.pinned_pages -= npages
        acct.registrations -= 1
        self.total_pinned_pages -= npages
        if acct.over_budget:
            quota = self.quota_of(acct.uid)
            if quota is None or acct.pinned_pages <= quota:
                acct.over_budget = False
                self.kernel.trace.emit(
                    "quota_recovered", uid=acct.uid,
                    pinned_pages=acct.pinned_pages, quota_pages=quota)
                obs = self.kernel.obs
                if obs.enabled:
                    obs.metrics.gauge(
                        f"tenant.{acct.uid}.over_budget").set(0)
        self._publish_account(acct)

    # -------------------------------------------------------------- obs

    def _publish_account(self, acct: TenantAccount) -> None:
        obs = self.kernel.obs
        if obs.enabled:
            metrics = obs.metrics
            metrics.gauge(f"tenant.{acct.uid}.pinned_pages").set(
                acct.pinned_pages)
            metrics.gauge("via.tenancy.total_pinned_pages").set(
                self.total_pinned_pages)

    def _publish_admission(self, *, denied: bool = False,
                           degraded: bool = False,
                           waited_ns: int = 0) -> None:
        obs = self.kernel.obs
        if obs.enabled:
            metrics = obs.metrics
            if denied:
                metrics.counter("via.admission.denied").inc()
            else:
                metrics.counter("via.admission.accepted").inc()
                if degraded:
                    metrics.counter("via.admission.degraded").inc()
            metrics.histogram("via.admission.wait_ns").observe(waited_ns)

    # ------------------------------------------------------------ reporting

    def snapshot(self) -> dict:
        """Plain-dict view for reports and BENCH.json payloads."""
        return {
            "host_ceiling_pages": self.host_ceiling_pages,
            "default_quota_pages": self.default_quota_pages,
            "total_pinned_pages": self.total_pinned_pages,
            "peak_total_pinned_pages": self.peak_total_pinned_pages,
            "tenants": {
                uid: {
                    "quota_pages": self.quota_of(uid),
                    "pinned_pages": acct.pinned_pages,
                    "peak_pinned_pages": acct.peak_pinned_pages,
                    "accepted": acct.accepted,
                    "denied": acct.denied,
                    "degraded": acct.degraded,
                    "wait_ns": acct.wait_ns,
                    "over_budget": acct.over_budget,
                    "quota_reloads": acct.quota_reloads,
                }
                for uid, acct in sorted(self.accounts.items())
            },
        }


def audit_tenant_accounting(agent: "KernelAgent") -> list[str]:
    """Cross-check the service's books against the driver's records.

    Recomputes per-tenant pinned pages from ``agent.registrations`` and
    returns a list of discrepancy descriptions (empty = consistent).
    The soak harness runs this continuously; a non-empty result means
    charge/credit got out of step with record lifetime somewhere.
    """
    by_uid: Counter[int] = Counter()
    for reg in agent.registrations.values():
        by_uid[reg.uid] += reg.region.npages
    service = agent.tenants
    problems: list[str] = []
    for uid, acct in service.accounts.items():
        actual = by_uid.get(uid, 0)
        if acct.pinned_pages != actual:
            problems.append(
                f"uid {uid}: account says {acct.pinned_pages} pinned "
                f"pages, registrations say {actual}")
    for uid in by_uid:
        if uid not in service.accounts:
            problems.append(
                f"uid {uid}: has registrations but no tenant account")
    total = sum(by_uid.values())
    if service.total_pinned_pages != total:
        problems.append(
            f"host: service total {service.total_pinned_pages} != "
            f"registrations total {total}")
    return problems
