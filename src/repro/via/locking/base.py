"""Locking-backend interface.

A backend answers one question for the Kernel Agent: *given a user
range, pin it and tell me its physical pages* — and later, *release it*.
Everything the paper compares lives behind these two calls.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hw.physmem import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


@dataclass
class LockResult:
    """Outcome of a lock operation."""

    frames: list[int]     #: physical frame per page of the range
    cookie: object        #: backend-private state for unlock


def range_vpns(va: int, nbytes: int) -> tuple[int, int]:
    """Page range ``[start_vpn, end_vpn)`` covering ``[va, va+nbytes)``."""
    return va // PAGE_SIZE, (va + nbytes - 1) // PAGE_SIZE + 1


class LockingBackend(abc.ABC):
    """Abstract memory-locking mechanism."""

    #: registry name
    name: str = "abstract"
    #: does the mechanism actually keep pages pinned under pressure?
    reliable: bool = False
    #: can the same range be registered several times safely?
    supports_multiple_registration: bool = False
    #: does the *driver* walk page tables (mainline-policy violation)?
    walks_page_tables: bool = True

    @abc.abstractmethod
    def lock(self, kernel: "Kernel", task: "Task", va: int,
             nbytes: int) -> LockResult:
        """Pin ``[va, va+nbytes)`` of ``task``; return physical frames."""

    @abc.abstractmethod
    def unlock(self, kernel: "Kernel", cookie: object) -> None:
        """Release a previous :meth:`lock` identified by its cookie."""

    def describe(self) -> dict:
        """Capability summary for reports (E1/E4 matrices)."""
        return {
            "name": self.name,
            "reliable": self.reliable,
            "supports_multiple_registration":
                self.supports_multiple_registration,
            "walks_page_tables": self.walks_page_tables,
        }
