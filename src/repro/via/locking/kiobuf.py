"""Kiobuf-based locking — the paper's proposal (Section 4).

Every registration maps its own kiobuf over the user range via
``map_user_kiobuf``:

* the **kernel** faults the pages in and returns their physical
  addresses — the driver never touches a page table, satisfying the
  mainline rule quoted in Sec. 4.1;
* each page gains a reference *and* a pin, and the reclaim path skips
  pinned pages, so registered memory genuinely cannot be swapped out;
* a second registration simply maps a second kiobuf: pins nest by
  construction, and ``unmap_kiobuf`` releases exactly one pin — multiple
  registrations "as the VIA specification explicitly allows" work with
  no driver-side bookkeeping at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.via.locking.base import LockingBackend, LockResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.kiobuf import Kiobuf
    from repro.kernel.task import Task


class KiobufLocking(LockingBackend):
    """One kiobuf per registration; the kernel does all the work."""

    name = "kiobuf"
    reliable = True
    supports_multiple_registration = True
    walks_page_tables = False     # the kiobuf layer walks them *in the kernel*

    def lock(self, kernel: "Kernel", task: "Task", va: int,
             nbytes: int) -> LockResult:
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        kio = kernel.map_user_kiobuf(task, va, nbytes, write=True)
        kernel.trace.emit("lock_kiobuf", pid=task.pid, va=va,
                          npages=kio.npages)
        return LockResult(frames=list(kio.frames), cookie=kio)

    def unlock(self, kernel: "Kernel", cookie: object) -> None:
        kio: "Kiobuf" = cookie  # type: ignore[assignment]
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        kernel.unmap_kiobuf(kio)
