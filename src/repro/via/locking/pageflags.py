"""Page-flag locking — Giganet cLAN style.

Section 3.1: "More recent versions of the Giganet driver set the
PG_locked resp. the PG_reserved bit in addition to that.  However, even
this cannot be regarded a clean solution since they do not check if the
page is possibly already locked by the kernel.  On deregistration the
counter is decremented again and ... the PG_locked flag is reset
regardless of the counter state."

Reliable *while the single registration lasts*, but:

* deregistering clears the flags **unconditionally**, so an overlapping
  second registration — or a page the kernel itself locked for I/O —
  silently loses its protection (benchmark E6 quantifies this);
* setting ``PG_reserved`` on a user page hides it from memory accounting
  entirely ("risky and unclean").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.fault import handle_fault
from repro.kernel.flags import PG_LOCKED, PG_RESERVED
from repro.via.locking.base import LockingBackend, LockResult, range_vpns

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


class PageFlagLocking(LockingBackend):
    """refcount + PG_locked/PG_reserved, cleared unconditionally."""

    name = "pageflags"
    reliable = True                          # while registered, once
    supports_multiple_registration = False   # the flag is a single bit
    walks_page_tables = True

    def lock(self, kernel: "Kernel", task: "Task", va: int,
             nbytes: int) -> LockResult:
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        start_vpn, end_vpn = range_vpns(va, nbytes)
        frames: list[int] = []
        for vpn in range(start_vpn, end_vpn):
            pte = task.page_table.lookup(vpn)
            if pte is None or not pte.present:
                handle_fault(kernel, task, vpn, write=True)
                pte = task.page_table.lookup(vpn)
            kernel.clock.charge(kernel.costs.pagetable_walk_ns, "register")
            # This backend pokes page descriptors from driver context on
            # purpose — that unaudited mutation *is* the historical
            # mechanism the paper critiques.
            pd = kernel.pagemap.get_page(pte.frame)  # repro-lint: allow(kernel-mutation)
            # No check whether the page is already locked — the hazard
            # the paper calls out.
            pd.set_flag(PG_LOCKED)       # repro-lint: allow(kernel-mutation)
            pd.set_flag(PG_RESERVED)     # repro-lint: allow(kernel-mutation)
            kernel.clock.charge(2 * kernel.costs.page_lock_ns, "register")
            frames.append(pte.frame)
        kernel.trace.emit("lock_pageflags", pid=task.pid, va=va,
                          npages=len(frames))
        return LockResult(frames=frames, cookie=("pageflags", frames))

    def unlock(self, kernel: "Kernel", cookie: object) -> None:
        kind, frames = cookie  # type: ignore[misc]
        assert kind == "pageflags"
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        for frame in frames:
            pd = kernel.pagemap.page(frame)
            # Cleared regardless of who else holds the lock:
            pd.clear_flag(PG_LOCKED)     # repro-lint: allow(kernel-mutation)
            pd.clear_flag(PG_RESERVED)   # repro-lint: allow(kernel-mutation)
            kernel.clock.charge(2 * kernel.costs.page_lock_ns, "register")
            kernel.pagemap.put_page(frame)  # repro-lint: allow(kernel-mutation)
