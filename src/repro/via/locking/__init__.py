"""Memory-locking backends for VIA registration.

Five implementations of the same interface: the four approaches
Section 3 of the paper analyses, plus the design point the paper could
not have — on-demand paging, which refuses to pin at registration:

===============  =========================================  ========== ==========
backend          models                                      reliable?  multiple
                                                                        regs?
===============  =========================================  ========== ==========
``refcount``     Berkeley-VIA, M-VIA (refcount only)         **no**     yes
``pageflags``    Giganet cLAN (refcount + PG_locked/          while      **no** —
                 PG_reserved, cleared unconditionally)       registered  unsafe
``mlock_naive``  VMA/do_mlock without driver bookkeeping     yes         **no**
``mlock``        VMA/do_mlock + per-page range accounting    yes         yes*
``kiobuf``       the paper's proposal                        yes         yes
``odp``          NP-RDMA / Psistakis on-demand paging:       yes**       yes
                 invalid TPT entries, pin on fault, evict
                 under pressure
===============  =========================================  ========== ==========

(*) at the cost of driver-side bookkeeping and page-table walks the
mainline kernel forbids.

(**) reliable by repair rather than by prevention: pages may move, but
every move is fenced by a TPT invalidate and a NIC suspend/fault/resume
round trip — see ``docs/odp.md``.

A sixth, historical approach — ``BigphysLocking`` over a boot-time
:class:`~repro.kernel.bigphys.BigPhysArea` reservation — is reliable
but restricts registration to specially-allocated memory (the pre-VIA
SCI driver design the collection criticises).  It needs an area
instance, so it is constructed explicitly rather than via the registry.
"""

from repro.via.locking.base import LockingBackend, LockResult
from repro.via.locking.refcount import RefcountLocking
from repro.via.locking.pageflags import PageFlagLocking
from repro.via.locking.vma_mlock import MlockLocking
from repro.via.locking.kiobuf import KiobufLocking
from repro.via.locking.bigphys import BigphysLocking
from repro.via.locking.odp import OdpCookie, OdpLocking

#: Registry of backend factories by name.
BACKENDS = {
    "refcount": RefcountLocking,
    "pageflags": PageFlagLocking,
    "mlock_naive": lambda: MlockLocking(track_ranges=False),
    "mlock": lambda: MlockLocking(track_ranges=True),
    "kiobuf": KiobufLocking,
    "odp": OdpLocking,
}


def make_backend(name: str) -> LockingBackend:
    """Instantiate a backend by registry name."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown locking backend {name!r}; "
            f"choose from {sorted(BACKENDS)}") from None
    return factory()


__all__ = [
    "LockingBackend", "LockResult", "RefcountLocking", "PageFlagLocking",
    "MlockLocking", "KiobufLocking", "BigphysLocking", "OdpCookie",
    "OdpLocking", "BACKENDS", "make_backend",
]
