"""On-demand-paging "locking" — no pin at registration at all.

The other four backends answer the paper's question — *how do we keep
registered pages resident?* — at registration time.  This backend
refuses the premise, the way NP-RDMA ("Using Commodity RDMA without
Pinning Memory") and Psistakis' virtual-address RDMA fault handling do:
registration records only the *shape* of the region, every TPT entry
starts with its valid bit clear, and pages are faulted in and pinned
just-in-time when a DMA actually touches them.  Under memory pressure
the inverse runs: reclaim may take resident pages back after their TPT
entries are invalidated, turning the paper's §3.1 hazard (a DMA landing
on a stolen frame) into a handled suspend/fault/resume event.

The pin bookkeeping lives in the :class:`OdpCookie`: each resident page
holds exactly one (reference, pin) pair taken through the kernel's
audited ``pin_user_page`` entry point.  A page is *committed* to the
cookie the moment it is pinned, before any crash point can fire — so
when the owner dies mid-fault-service, the exit path's ordinary
``backend.unlock(cookie)`` finds and releases every pin taken so far
and nothing leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hw.physmem import PAGE_SIZE
from repro.errors import ViaError
from repro.via.locking.base import LockingBackend, LockResult, range_vpns
from repro.via.tpt import INVALID_FRAME

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


@dataclass
class OdpCookie:
    """Backend-private state of one ODP registration."""

    pid: int
    va: int
    npages: int
    #: region-relative page index → pinned frame, for every page that is
    #: currently resident; the single source of truth the exit path,
    #: the eviction hook, and deregistration all release from
    resident: dict[int, int] = field(default_factory=dict)
    released: bool = False

    @property
    def start_vpn(self) -> int:
        return self.va // PAGE_SIZE


class OdpLocking(LockingBackend):
    """Register now, pin on first touch, evict under pressure."""

    name = "odp"
    #: reliable in the ODP sense: a DMA never lands on a stale frame —
    #: not because pages cannot move, but because every move is fenced
    #: by a TPT invalidate and repaired by a fault service
    reliable = True
    supports_multiple_registration = True
    walks_page_tables = False

    def lock(self, kernel: "Kernel", task: "Task", va: int,
             nbytes: int) -> LockResult:
        """O(1) registration: no faulting, no pinning, no frames.

        Every returned frame is the :data:`INVALID_FRAME` sentinel; the
        TPT installs them with the valid bit clear and the fault service
        patches real frames in later.
        """
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        start_vpn, end_vpn = range_vpns(va, nbytes)
        npages = end_vpn - start_vpn
        kernel.trace.emit("lock_odp", pid=task.pid, va=va, npages=npages)
        return LockResult(
            frames=[INVALID_FRAME] * npages,
            cookie=OdpCookie(pid=task.pid, va=va, npages=npages))

    def unlock(self, kernel: "Kernel", cookie: object) -> None:
        """Release every just-in-time pin the registration still holds."""
        assert isinstance(cookie, OdpCookie)
        if cookie.released:
            raise ViaError(
                "odp lock cookie already released (double deregistration)",
                status="VIP_INVALID_MEMORY")
        cookie.released = True
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        for frame in cookie.resident.values():
            kernel.unpin_user_page(frame, cookie.pid)
        cookie.resident.clear()

    # -- ODP-specific operations (driven by the KernelAgent) ----------------

    def fault_in(self, kernel: "Kernel", task: "Task", cookie: OdpCookie,
                 pages: tuple[int, ...]) -> dict[int, int]:
        """Fault + pin the given region-relative pages just-in-time.

        Returns page index → frame for every page now resident.  Each
        page is committed to ``cookie.resident`` immediately after its
        pin, so a kill landing anywhere downstream is cleaned up by the
        exit path's ``unlock`` — never leaked, never double-freed.
        """
        patched: dict[int, int] = {}
        for index in pages:
            if index in cookie.resident:
                # Lost a race with a concurrent fault on the same extent.
                patched[index] = cookie.resident[index]
                continue
            frame = kernel.pin_user_page(task, cookie.start_vpn + index)
            cookie.resident[index] = frame
            patched[index] = frame
        return patched

    def evict_frame(self, kernel: "Kernel", cookie: OdpCookie,
                    frame: int) -> tuple[int, ...]:
        """Drop the pins this registration holds on ``frame`` (pressure
        path); returns the page indices that went non-resident."""
        indices = tuple(i for i, f in cookie.resident.items() if f == frame)
        for index in indices:
            del cookie.resident[index]
            kernel.unpin_user_page(frame, cookie.pid)
        return indices
