"""Bigphysarea "locking" — registration restricted to the reserved
region.

No locking work is needed at registration time: the region's frames are
``PG_reserved`` from boot, so they can never move.  The price is the
constraint the collection calls out: "data transfers can happen on the
reserved memory region only, this would require the MPI applications to
use special malloc() functions ... but this violates a major goal of
the MPI standard: Architecture Independence."  A buffer that did not
come from :class:`~repro.kernel.bigphys.BigPhysArea` is rejected.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvalidArgument
from repro.kernel.bigphys import BigPhysArea
from repro.via.locking.base import LockingBackend, LockResult, range_vpns

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


class BigphysLocking(LockingBackend):
    """Accepts only buffers allocated from the bigphysarea."""

    name = "bigphys"
    reliable = True
    supports_multiple_registration = True   # reservation never moves
    walks_page_tables = True

    def __init__(self, area: BigPhysArea) -> None:
        self.area = area

    def lock(self, kernel: "Kernel", task: "Task", va: int,
             nbytes: int) -> LockResult:
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        start_vpn, end_vpn = range_vpns(va, nbytes)
        frames: list[int] = []
        for vpn in range(start_vpn, end_vpn):
            pte = task.page_table.lookup(vpn)
            if pte is None or not pte.present or \
                    not self.area.contains(pte.frame):
                raise InvalidArgument(
                    f"buffer page vpn {vpn} was not allocated from the "
                    f"bigphysarea; ordinary malloc'd memory cannot be "
                    f"registered with this driver")
            kernel.clock.charge(kernel.costs.pagetable_walk_ns,
                                "register")
            frames.append(pte.frame)
        kernel.trace.emit("lock_bigphys", pid=task.pid, va=va,
                          npages=len(frames))
        return LockResult(frames=frames, cookie=("bigphys", frames))

    def unlock(self, kernel: "Kernel", cookie: object) -> None:
        kind, _frames = cookie  # type: ignore[misc]
        assert kind == "bigphys"
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        # Nothing to release: the reservation outlives registrations.
