"""Refcount-only "locking" — Berkeley-VIA / M-VIA style.

Section 3.1: "Berkeley-VIA and M-VIA simply increment the reference
counter of the pages. ... We have conducted some experiments that show
that pages are swapped out even when their reference counters are bigger
than one."

This backend is **deliberately broken**: it is the faithful model of the
flawed approach the paper demonstrates against.  It faults pages in,
walks the page tables for their physical addresses, and takes a bare
``get_page`` reference — which the reclaim path ignores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import PageAccountingError, ViaError
from repro.kernel.fault import handle_fault
from repro.via.locking.base import LockingBackend, LockResult, range_vpns

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


class RefcountLocking(LockingBackend):
    """Increment page reference counters; nothing more."""

    name = "refcount"
    reliable = False
    supports_multiple_registration = True   # counters nest — that part works
    walks_page_tables = True

    def lock(self, kernel: "Kernel", task: "Task", va: int,
             nbytes: int) -> LockResult:
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        start_vpn, end_vpn = range_vpns(va, nbytes)
        frames: list[int] = []
        for vpn in range(start_vpn, end_vpn):
            pte = task.page_table.lookup(vpn)
            if pte is None or not pte.present:
                handle_fault(kernel, task, vpn, write=True)
                pte = task.page_table.lookup(vpn)
            kernel.clock.charge(kernel.costs.pagetable_walk_ns, "register")
            # Bare refcount bump from driver context — the deliberately
            # broken mechanism this backend models (§3.1).
            kernel.pagemap.get_page(pte.frame)  # repro-lint: allow(kernel-mutation)
            frames.append(pte.frame)
        kernel.trace.emit("lock_refcount", pid=task.pid, va=va,
                          npages=len(frames))
        # The third cookie element makes the cookie one-shot: releasing
        # it twice (an exit path racing an explicit deregister) must not
        # silently drop references it never took.
        return LockResult(frames=frames,
                          cookie=("refcount", frames, {"released": False}))

    def unlock(self, kernel: "Kernel", cookie: object) -> None:
        kind, frames, state = cookie  # type: ignore[misc]
        assert kind == "refcount"
        if state["released"]:
            raise ViaError(
                "refcount lock cookie already released "
                "(double deregistration)", status="VIP_INVALID_MEMORY")
        state["released"] = True
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        for frame in frames:
            pd = kernel.pagemap.page(frame)
            if pd.count <= 0:
                raise PageAccountingError(
                    f"refcount unlock would drive frame {frame} below "
                    f"zero (count={pd.count})")
            # If the page was orphaned by swap_out in the meantime, this
            # put is the last reference and quietly frees the orphan —
            # "system stability is not affected by this lapse".
            kernel.pagemap.put_page(frame)  # repro-lint: allow(kernel-mutation)
