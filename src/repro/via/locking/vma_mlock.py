"""VMA-based locking via ``do_mlock`` — Section 3.2.

The Kernel Agent raises ``CAP_IPC_LOCK`` on the calling task, goes
through the checked ``mlock`` path, and lowers the capability again
(the paper's second circumvention of the super-user restriction).

Two flavours, selected by ``track_ranges``:

* **naive** (``track_ranges=False``) — register locks, deregister
  unlocks.  Because "mlock calls do not nest", the first deregistration
  of a multiply-registered range unlocks it for everyone: reliability is
  silently lost (benchmark E2).
* **tracked** (``track_ranges=True``) — "the driver must keep track of
  which address ranges are registered how often ... It must unlock the
  memory only upon the last deregistration."  We keep a per-(pid, vpn)
  lock count and munlock only pages whose count reaches zero.

Both flavours must still call ``virt_to_phys`` to fill the TPT — the
page-table walk mainline policy forbids drivers ("I will NOT allow
anything that walks page tables", Sec. 4.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.physmem import PAGE_SIZE
from repro.via.locking.base import LockingBackend, LockResult, range_vpns

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task


class MlockLocking(LockingBackend):
    """``do_mlock``/``do_munlock`` with optional range bookkeeping."""

    walks_page_tables = True
    reliable = True

    def __init__(self, track_ranges: bool = True,
                 use_cap_dance: bool = True) -> None:
        self.track_ranges = track_ranges
        self.use_cap_dance = use_cap_dance
        self.name = "mlock" if track_ranges else "mlock_naive"
        self.supports_multiple_registration = track_ranges
        #: per-(pid, vpn) registration counts (tracked flavour only)
        self._lock_counts: dict[tuple[int, int], int] = {}

    # -- helpers -----------------------------------------------------------

    def _mlock(self, kernel: "Kernel", task: "Task", va: int,
               nbytes: int) -> None:
        if self.use_cap_dance:
            kernel.mlock_with_cap_dance(task, va, nbytes)
        else:
            kernel.do_mlock(task, va, nbytes)

    # -- interface -----------------------------------------------------------

    def lock(self, kernel: "Kernel", task: "Task", va: int,
             nbytes: int) -> LockResult:
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        start_vpn, end_vpn = range_vpns(va, nbytes)
        self._mlock(kernel, task, va, nbytes)
        # do_mlock made the pages present; now the driver must learn
        # their physical addresses the only way it can:
        frames = [
            kernel.virt_to_phys(task, vpn * PAGE_SIZE) // PAGE_SIZE
            for vpn in range(start_vpn, end_vpn)
        ]
        if self.track_ranges:
            for vpn in range(start_vpn, end_vpn):
                key = (task.pid, vpn)
                self._lock_counts[key] = self._lock_counts.get(key, 0) + 1
        kernel.trace.emit("lock_mlock", pid=task.pid, va=va,
                          npages=len(frames), tracked=self.track_ranges)
        return LockResult(
            frames=frames,
            cookie=("mlock", task.pid, start_vpn, end_vpn))

    def unlock(self, kernel: "Kernel", cookie: object) -> None:
        kind, pid, start_vpn, end_vpn = cookie  # type: ignore[misc]
        assert kind == "mlock"
        kernel.clock.charge(kernel.costs.syscall_ns, "register")
        task = kernel.find_task(pid)
        if not self.track_ranges:
            # Naive: one munlock over the whole range — annuls every
            # other registration of these pages.
            kernel.do_munlock(task, start_vpn * PAGE_SIZE,
                              (end_vpn - start_vpn) * PAGE_SIZE)
            return
        # Tracked: munlock only pages whose count drops to zero, page by
        # page (contiguous zero-count runs are batched).
        run_start: int | None = None
        for vpn in range(start_vpn, end_vpn + 1):
            release = False
            if vpn < end_vpn:
                key = (task.pid, vpn)
                count = self._lock_counts.get(key, 0)
                if count <= 1:
                    self._lock_counts.pop(key, None)
                    release = True
                else:
                    self._lock_counts[key] = count - 1
            if release:
                if run_start is None:
                    run_start = vpn
            else:
                if run_start is not None:
                    kernel.do_munlock(task, run_start * PAGE_SIZE,
                                      (vpn - run_start) * PAGE_SIZE)
                    run_start = None

    def lock_count(self, pid: int, vpn: int) -> int:
        """Current registration count for one page (tracked flavour)."""
        return self._lock_counts.get((pid, vpn), 0)
