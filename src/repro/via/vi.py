"""Virtual Interfaces: work queues + doorbells.

"A VI comprises two work queues, one for send descriptors and one for
receive descriptors, and a pair of appendant doorbells."  Doorbells are
the user-level notification path: a doorbell is one page of the NIC's
register space mapped into exactly one process, so "the handling which
process may access which doorbell ... can be simply realized by the
host's virtual memory management system".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque

from repro.errors import ViaConnectionError
from repro.via.constants import (
    VIP_ERROR_CONN_LOST, ReliabilityLevel, ViState,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.cq import CompletionQueue
    from repro.via.descriptor import Descriptor


@dataclass
class Doorbell:
    """A doorbell: the page-sized register window of one VI.

    ``owner_pid`` models the virtual-memory protection: only the process
    the doorbell page is mapped into can ring it.
    """

    vi_id: int
    queue: str                  #: ``"send"`` or ``"recv"``
    owner_pid: int
    rings: int = 0

    def ring(self, pid: int) -> None:
        """Ring the doorbell; a foreign pid means the process faked a
        doorbell access it could never perform on real hardware."""
        if pid != self.owner_pid:
            raise ViaConnectionError(
                f"pid {pid} rang doorbell of VI {self.vi_id} owned by "
                f"pid {self.owner_pid}")
        self.rings += 1


@dataclass
class VirtualInterface:
    """One VI: the unit of connection and protection."""

    vi_id: int
    owner_pid: int
    prot_tag: int
    reliability: ReliabilityLevel = ReliabilityLevel.RELIABLE_DELIVERY
    state: ViState = ViState.IDLE
    #: remote endpoint as ``(nic_name, vi_id)`` once connected
    peer: tuple[str, int] | None = None

    send_queue: Deque["Descriptor"] = field(default_factory=deque)
    recv_queue: Deque["Descriptor"] = field(default_factory=deque)
    send_doorbell: Doorbell = field(default=None)  # type: ignore[assignment]
    recv_doorbell: Doorbell = field(default=None)  # type: ignore[assignment]

    send_cq: "CompletionQueue | None" = None
    recv_cq: "CompletionQueue | None" = None

    #: completed descriptors awaiting VipSendDone/VipRecvDone polls when
    #: no CQ is attached
    send_done: Deque["Descriptor"] = field(default_factory=deque)
    recv_done: Deque["Descriptor"] = field(default_factory=deque)

    #: reliability protocol state: last sequence number transmitted, and
    #: highest sequence number successfully received (for deduplication
    #: of retransmits after a lost ACK)
    tx_seq: int = 0
    rx_seq: int = 0

    #: responder-side atomic dedup cache: seq → (status, original value).
    #: A retransmitted atomic (its response was lost) is answered from
    #: here instead of re-executing the RMW — atomics must be
    #: idempotent-guarded, not blindly replayed.  Bounded by
    #: :data:`~repro.via.constants.ATOMIC_RESPONSE_CACHE`.
    atomic_responses: dict[int, tuple[str, int]] = field(
        default_factory=dict)

    def __post_init__(self) -> None:
        if self.send_doorbell is None:
            self.send_doorbell = Doorbell(self.vi_id, "send", self.owner_pid)
        if self.recv_doorbell is None:
            self.recv_doorbell = Doorbell(self.vi_id, "recv", self.owner_pid)

    # -- state ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self.state == ViState.CONNECTED

    @property
    def outstanding(self) -> int:
        """Descriptors still queued (posted, not yet completed)."""
        return len(self.send_queue) + len(self.recv_queue)

    def require_connected(self) -> None:
        """Raise unless the VI is in the CONNECTED state."""
        if self.state != ViState.CONNECTED:
            raise ViaConnectionError(
                f"VI {self.vi_id} is {self.state.value}, not connected")

    def enter_error(self, status: str = VIP_ERROR_CONN_LOST) -> None:
        """Break the connection (reliable-mode delivery failure or NIC
        reset).

        Per the VIA spec, the transition completes every outstanding
        descriptor on both work queues with ``VIP_ERROR_CONN_LOST`` so
        user code polling for completions learns of the loss instead of
        waiting forever.
        """
        self.state = ViState.ERROR
        while self.send_queue:
            desc = self.send_queue.popleft()
            desc.complete(status, 0)
            self.complete_send(desc)
        while self.recv_queue:
            desc = self.recv_queue.popleft()
            desc.complete(status, 0)
            self.complete_recv(desc)

    # -- completion plumbing -------------------------------------------------------

    def complete_send(self, desc: "Descriptor") -> None:
        """Route a finished send descriptor to its CQ or local done list."""
        from repro.via.cq import Completion
        if self.send_cq is not None:
            self.send_cq.post(Completion(
                self.vi_id, "send", desc,
                atomic_original_value=desc.atomic_original_value))
        else:
            self.send_done.append(desc)

    def complete_recv(self, desc: "Descriptor") -> None:
        """Route a finished receive descriptor likewise."""
        from repro.via.cq import Completion
        if self.recv_cq is not None:
            self.recv_cq.post(Completion(
                self.vi_id, "recv", desc,
                atomic_original_value=desc.atomic_original_value))
        else:
            self.recv_done.append(desc)
