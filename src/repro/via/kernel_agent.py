"""The VI Kernel Agent — the device driver.

"The Kernel Agent is a kernel-level device driver that performs
operations that require kernel calls (e.g. memory registration)."

It owns protection-tag allocation, memory registration (delegating the
pinning itself to a pluggable :class:`~repro.via.locking.base.
LockingBackend` and the translation bookkeeping to the NIC's TPT), VI
creation, and connection setup.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.events import (
    DEREGISTER, FAULT_SERVICE, FENCE, ODP_EVICT, REGISTER,
)
from repro.errors import (
    InvalidArgument, NotRegistered, ProcessKilled, ViaError,
)
from repro.hw.physmem import PAGE_SIZE
from repro.sim.faults import crash_if_due
from repro.via.constants import VIP_ERROR_RESOURCE, ReliabilityLevel
from repro.via.cq import CompletionQueue
from repro.via.locking import make_backend
from repro.via.locking.base import LockingBackend
from repro.via.locking.odp import OdpCookie, OdpLocking
from repro.via.tenancy import TenantService
from repro.via.tpt import INVALID_FRAME, MemoryRegion
from repro.via.vi import VirtualInterface

#: Bound on the in-flight/recently-served fault table: real ODP NICs
#: track a fixed number of outstanding page requests; ours additionally
#: uses the table to coalesce duplicate requests for the same extent.
ODP_FAULT_TABLE_ENTRIES = 64

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.task import Task
    from repro.sim.faults import FaultPlan
    from repro.via.nic import VIANic

_tags = itertools.count(0x100)


@dataclass
class Registration:
    """Driver-side record of one memory registration."""

    region: MemoryRegion
    pid: int
    va: int
    nbytes: int
    backend_name: str
    #: owning tenant; -1 only for records predating uid tracking
    uid: int = -1

    @property
    def handle(self) -> int:
        return self.region.handle


class KernelAgent:
    """Driver instance binding one NIC to one kernel."""

    def __init__(self, kernel: "Kernel", nic: "VIANic",
                 backend: LockingBackend | str = "kiobuf",
                 tenants: TenantService | None = None,
                 tenant_quota_pages: int | None = None,
                 host_pin_ceiling_pages: int | None = None) -> None:
        self.kernel = kernel
        self.nic = nic
        self.backend: LockingBackend = (
            make_backend(backend) if isinstance(backend, str) else backend)
        #: the multi-tenant registration service: per-uid pinned-page
        #: budgets and the host pin ceiling, consulted before every pin.
        #: Defaults to a fully open service (no quota, no ceiling).
        self.tenants: TenantService = (
            tenants if tenants is not None else TenantService(
                kernel, default_quota_pages=tenant_quota_pages,
                host_ceiling_pages=host_pin_ceiling_pages))
        #: protection tag per pid ("usually, a process uses a unique
        #: protection tag which is created after opening the VIA
        #: environment")
        self._tags: dict[int, int] = {}
        #: live registrations by handle
        self.registrations: dict[int, Registration] = {}
        self.fault_plan: "FaultPlan | None" = None
        # The driver owns per-process state (VIs, registrations, pins),
        # so it must hear about exits and munmaps: a process dying with
        # live registrations must not leak pinned frames, and unmapping
        # a registered range must not leave stale TPT entries.
        kernel.exit_hooks.append(self.on_task_exit)
        kernel.munmap_hooks.append(self.on_munmap)
        # ODP plumbing: the NIC forwards translation faults here, and
        # reclaim consults us before skipping a pinned frame.
        nic.fault_service = self.service_translation_fault
        kernel.pin_eviction_hooks.append(self.try_evict_frame)
        #: frame → {(handle, page_index)}: which ODP registrations hold
        #: a just-in-time pin on each frame (the eviction hook's index)
        self._odp_resident: dict[int, set[tuple[int, int]]] = {}
        #: bounded (handle, pages) → completion-time table; a duplicate
        #: fault request landing while its pages are already valid is
        #: *coalesced* — counted, but not re-serviced
        self._fault_table: OrderedDict[tuple, int] = OrderedDict()
        self.odp_faults_serviced = 0
        self.odp_faults_coalesced = 0
        self.odp_pages_evicted = 0

    # ---------------------------------------------------------------- open

    def open_nic(self, task: "Task") -> int:
        """Open the NIC for ``task``; allocates (once) and returns its
        protection tag."""
        self.kernel.clock.charge(self.kernel.costs.syscall_ns, "via_setup")
        tag = self._tags.get(task.pid)
        if tag is None:
            tag = next(_tags)
            self._tags[task.pid] = tag
        self.tenants.note_task(task)
        return tag

    def prot_tag(self, task: "Task") -> int:
        """The task's protection tag (must have opened the NIC)."""
        tag = self._tags.get(task.pid)
        if tag is None:
            raise InvalidArgument(
                f"{task.name} has not opened NIC {self.nic.name}")
        return tag

    # ---------------------------------------------------------- registration

    def register_memory(self, task: "Task", va: int, nbytes: int,
                        rdma_write: bool = False,
                        rdma_read: bool = False,
                        rdma_atomic: bool = False) -> Registration:
        """Register ``[va, va+nbytes)``: pin via the backend, record the
        physical pages in the TPT under the task's protection tag.

        The VIA spec "explicitly allows memory regions to be registered
        several times"; whether that actually *works* depends on the
        backend (see :mod:`repro.via.locking`).
        """
        if nbytes <= 0:
            raise InvalidArgument(f"cannot register {nbytes} bytes")
        tag = self.prot_tag(task)
        plan = self.fault_plan
        crash_if_due(plan, self.kernel, task, "register.start")
        if plan is not None and plan.take_registration_failure():
            # Driver-level failure (TPT exhaustion, transient driver
            # error) before any pin is taken — nothing to clean up.
            self.kernel.trace.emit("fault_registration", pid=task.pid,
                                   va=va, nbytes=nbytes)
            raise ViaError("injected registration failure",
                           status=VIP_ERROR_RESOURCE)
        if plan is not None and plan.take_pin_failure():
            # Backend-level failure: the locking mechanism could not pin
            # the range (memory pressure, kiobuf allocation failure).
            self.kernel.trace.emit("fault_pin", pid=task.pid, va=va,
                                   nbytes=nbytes,
                                   backend=self.backend.name)
            raise ViaError("injected pin failure",
                           status=VIP_ERROR_RESOURCE)
        # Admission control, before any pin is taken: the tenant budget
        # and the host ceiling see the same page-aligned count the
        # backend is about to pin.  A rejection here needs no cleanup.
        npages = ((va + nbytes - 1) // PAGE_SIZE) - (va // PAGE_SIZE) + 1
        self.tenants.admit(task, npages)
        result = self.backend.lock(self.kernel, task, va, nbytes)
        # Crash here = the process died pinned-but-uninstalled; the exit
        # path's kiobuf sweep (or the reaper) must release the pin.
        crash_if_due(plan, self.kernel, task, "register.pinned")
        try:
            crash_if_due(plan, self.kernel, task, "register.install")
            region = self.nic.tpt.install(
                va_base=va, nbytes=nbytes, prot_tag=tag,
                frames=result.frames, rdma_write=rdma_write,
                rdma_read=rdma_read, rdma_atomic=rdma_atomic,
                lock_cookie=result.cookie,
                odp=isinstance(self.backend, OdpLocking))
        except ProcessKilled:
            # The registering process died here: the kill's exit path has
            # already released the backend's state (the kiobuf sweep, the
            # address-space teardown).  Compensating via backend.unlock
            # would double-release — and its failure would mask the
            # ProcessKilled we must propagate.
            raise
        except Exception:
            self.backend.unlock(self.kernel, result.cookie)
            raise
        self.kernel.clock.charge(
            len(result.frames) * self.kernel.costs.tpt_update_ns,
            "register")
        reg = Registration(region=region, pid=task.pid, va=va,
                           nbytes=nbytes, backend_name=self.backend.name,
                           uid=task.uid)
        self.registrations[region.handle] = reg
        # Charge while the record exists: a crash at register.installed
        # runs the exit path's deregistration, whose credit must find
        # the charge already booked.
        self.tenants.charge(reg)
        if self.kernel.events.active:
            # An ODP registration has no resident frames yet; the invalid
            # sentinels never reach the analysis stream.
            self.kernel.events.emit(
                REGISTER, handle=region.handle, pid=task.pid,
                frames=tuple(f for f in result.frames
                             if f != INVALID_FRAME),
                backend=self.backend.name,
                first_vpn=region.first_vpn, npages=region.npages,
                uid=task.uid,
                quota_pages=self.tenants.quota_of(task.uid))
        self.kernel.trace.emit("via_register", pid=task.pid, va=va,
                               nbytes=nbytes, handle=region.handle,
                               backend=self.backend.name)
        # Crash here = died with a fully recorded registration; the exit
        # hook deregisters it like any other.
        crash_if_due(plan, self.kernel, task, "register.installed")
        return reg

    def deregister_memory(self, handle: int) -> None:
        """Deregister a region: drop the TPT entries, release the pin."""
        reg = self.registrations.pop(handle, None)
        if reg is None:
            raise NotRegistered(f"no registration with handle {handle}")
        # Credit follows the record: it is gone as of the pop above,
        # even if the unlock below fails (that leak is the reaper's).
        self.tenants.credit(reg)
        # DEREGISTER is emitted before the backend unlocks: the unlock's
        # own events (an mlock backend's MUNLOCK) must be attributable to
        # a *dead* registration, or the sanitizer's §3.2 nesting check
        # could not tell a legitimate last-unlock from an annulment.
        if self.kernel.events.active:
            self.kernel.events.emit(DEREGISTER, handle=handle, pid=reg.pid)
        region = self.nic.tpt.remove(handle)
        self.kernel.clock.charge(
            region.npages * self.kernel.costs.tpt_update_ns, "register")
        self._purge_odp_index(handle, region.lock_cookie)
        self.backend.unlock(self.kernel, region.lock_cookie)
        self.kernel.trace.emit("via_deregister", handle=handle,
                               backend=self.backend.name)

    def registrations_of(self, pid: int) -> list[Registration]:
        """All live registrations of one process."""
        return [r for r in self.registrations.values() if r.pid == pid]

    def reclaim_registration(self, handle: int) -> None:
        """Teardown-ordering variant of :meth:`deregister_memory` for
        the reaper: release the pin *first*, so a backend failure leaves
        the registration record (and TPT entry) intact for a retry, then
        drop the TPT entries and the driver record."""
        reg = self.registrations.get(handle)
        if reg is None:
            raise NotRegistered(f"no registration with handle {handle}")
        # Same ordering rationale as deregister_memory: announce the
        # registration dead before the unlock's side effects.  (If the
        # unlock fails the record stays for a retry, which re-announces;
        # the sanitizer tolerates a DEREGISTER for an unknown handle.)
        if self.kernel.events.active:
            self.kernel.events.emit(DEREGISTER, handle=handle, pid=reg.pid)
        self._purge_odp_index(handle, reg.region.lock_cookie)
        self.backend.unlock(self.kernel, reg.region.lock_cookie)
        self.registrations.pop(handle, None)
        self.tenants.credit(reg)
        region = self.nic.tpt.remove(handle)
        self.kernel.clock.charge(
            region.npages * self.kernel.costs.tpt_update_ns, "register")
        self.kernel.trace.emit("via_reclaim_registration", handle=handle,
                               pid=reg.pid, backend=self.backend.name)

    def forget_registration(self, handle: int) -> Registration:
        """Last-resort teardown: drop the TPT entries and the driver
        record even though the backend could not (or will not) release
        the pin.  The leaked pin becomes the unexplained-pin scan's
        problem; the stale translation is gone, which is the part the
        hardware would otherwise DMA through."""
        reg = self.registrations.pop(handle, None)
        if reg is None:
            raise NotRegistered(f"no registration with handle {handle}")
        self.tenants.credit(reg)
        if self.kernel.events.active:
            self.kernel.events.emit(DEREGISTER, handle=handle, pid=reg.pid)
        self.nic.tpt.remove(handle)
        # The pins leak with the record (that is this method's contract),
        # so the eviction index must forget them too — a later hook call
        # must not dereference a dropped registration.
        self._purge_odp_index(handle, reg.region.lock_cookie)
        self.kernel.trace.emit("via_forget_registration", handle=handle,
                               pid=reg.pid, backend=self.backend.name)
        return reg

    # -------------------------------------------------- on-demand paging

    def _purge_odp_index(self, handle: int, cookie: object) -> None:
        """Drop a dying registration's entries from the eviction index
        (must run while the cookie still lists its resident pages)."""
        if not isinstance(cookie, OdpCookie):
            return
        for index, frame in cookie.resident.items():
            owners = self._odp_resident.get(frame)
            if owners is not None:
                owners.discard((handle, index))
                if not owners:
                    del self._odp_resident[frame]
        self._fault_table = OrderedDict(
            (k, v) for k, v in self._fault_table.items() if k[0] != handle)

    def service_translation_fault(self, handle: int,
                                  pages: tuple[int, ...],
                                  token: int | None = None
                                  ) -> dict[int, int]:
        """Handle a NIC translation fault: fault the pages in, pin them,
        patch the TPT, and let the NIC resume the suspended transfer.

        Duplicate requests coalesce: a request whose pages are already
        valid, arriving no later than the completion time of the service
        that made them valid, is counted and answered from the TPT
        without re-running the fault path.  Returns page index → frame.
        """
        reg = self.registrations.get(handle)
        if reg is None:
            raise NotRegistered(
                f"fault service: no registration with handle {handle}")
        cookie = reg.region.lock_cookie
        if not isinstance(cookie, OdpCookie) \
                or not isinstance(self.backend, OdpLocking):
            raise ViaError(
                f"fault service: handle {handle} is not an ODP "
                "registration", status="VIP_INVALID_MEMORY")
        kernel = self.kernel
        key = (handle, pages)
        done_ns = self._fault_table.get(key)
        frames = reg.region.frames
        if done_ns is not None and kernel.clock.now_ns <= done_ns \
                and all(frames[i] != INVALID_FRAME for i in pages):
            self.odp_faults_coalesced += 1
            self._fault_table.move_to_end(key)
            if kernel.events.active:
                kernel.events.emit(
                    FAULT_SERVICE, handle=handle, pages=pages,
                    frames=tuple(frames[i] for i in pages),
                    pid=reg.pid, token=token, coalesced=True,
                    actor="fault_service")
            kernel.trace.emit("odp_fault_coalesced", handle=handle,
                              pages=len(pages), pid=reg.pid)
            return {i: frames[i] for i in pages}

        task = kernel.find_task(reg.pid)
        crash_if_due(self.fault_plan, kernel, task, "odp_fault.start")
        kernel.clock.charge(kernel.costs.odp_fault_service_base_ns, "odp")
        patched = self.backend.fault_in(kernel, task, cookie, pages)
        crash_if_due(self.fault_plan, kernel, task, "odp_fault.pinned")
        self.nic.tpt.patch(handle, patched)
        kernel.clock.charge(
            len(patched) * kernel.costs.tpt_update_ns, "odp")
        for index, frame in patched.items():
            self._odp_resident.setdefault(frame, set()).add((handle, index))
        while len(self._fault_table) >= ODP_FAULT_TABLE_ENTRIES:
            self._fault_table.popitem(last=False)
        self._fault_table[key] = kernel.clock.now_ns
        self.odp_faults_serviced += 1
        if kernel.events.active:
            kernel.events.emit(
                FAULT_SERVICE, handle=handle, pages=pages,
                frames=tuple(patched[i] for i in pages),
                pid=reg.pid, token=token, coalesced=False,
                actor="fault_service")
        kernel.trace.emit("odp_fault_service", handle=handle,
                          pages=len(pages), pid=reg.pid)
        crash_if_due(self.fault_plan, kernel, task, "odp_fault.patched")
        return patched

    def try_evict_frame(self, frame: int) -> bool:
        """Pin-eviction hook: asked by reclaim about a pinned frame.

        If the only pins on the frame are ODP just-in-time pins, fence
        the NIC first (invalidate the TPT entries, flushing cached
        translations), then release the pins — the inverse of the fault
        service.  Returns True when the frame ended up unpinned, i.e.
        reclaim may steal it after all.
        """
        owners = self._odp_resident.pop(frame, None)
        if not owners:
            return False
        kernel = self.kernel
        by_handle: dict[int, list[int]] = {}
        for handle, index in owners:
            by_handle.setdefault(handle, []).append(index)
        for handle, indices in sorted(by_handle.items()):
            reg = self.registrations.get(handle)
            if reg is None:
                continue
            # Fence before unpin: the NIC must stop translating through
            # the frame before the pin that kept it resident goes away.
            # The FENCE release is keyed by handle so a later fault
            # service of this region is ordered after the invalidation.
            if kernel.events.active:
                kernel.events.emit(FENCE, handle=handle, frame=frame,
                                   pages=tuple(sorted(indices)),
                                   actor="agent")
            self.nic.tpt.invalidate_pages(handle, sorted(indices))
            assert isinstance(self.backend, OdpLocking)
            self.backend.evict_frame(kernel, reg.region.lock_cookie, frame)
            self.odp_pages_evicted += len(indices)
            if kernel.events.active:
                kernel.events.emit(ODP_EVICT, handle=handle, frame=frame,
                                   pages=tuple(sorted(indices)),
                                   pid=reg.pid, actor="agent")
            kernel.trace.emit("odp_evict", handle=handle, frame=frame,
                              pages=len(indices), pid=reg.pid)
        return not kernel.pagemap.page(frame).pinned

    # ------------------------------------------------------------ exit path

    def on_task_exit(self, task: "Task") -> None:
        """Exit-path reclamation: walk this driver's per-pid state.

        Order matters — VIs first (peers complete with CONN_LOST and the
        victim's descriptors flush before the memory they name is
        unpinned), then registrations (through the active locking
        strategy, so pin refcounts actually reach zero; removing a TPT
        entry also invalidates the NIC's translation LRU), then the
        protection tag.
        """
        pid = task.pid
        vis = descriptors = 0
        for vi in [v for v in self.nic.vis.values() if v.owner_pid == pid]:
            descriptors += self.nic.teardown_vi(vi.vi_id,
                                                reason="owner_exit")
            vis += 1
        regs = 0
        for reg in self.registrations_of(pid):
            self.deregister_memory(reg.handle)
            regs += 1
        self._tags.pop(pid, None)
        if vis or regs or descriptors:
            self.kernel.trace.emit("via_task_teardown", pid=pid, vis=vis,
                                   registrations=regs,
                                   descriptors=descriptors)

    def on_munmap(self, task: "Task", start_vpn: int,
                  end_vpn: int) -> None:
        """Force-deregister registrations overlapping an unmapped range.

        Without this, ``munmap`` of a still-registered region silently
        leaves stale TPT entries: the frames are freed (or recycled)
        while the NIC keeps DMA-ing through the old translations.
        """
        for reg in self.registrations_of(task.pid):
            r_first = reg.va // PAGE_SIZE
            r_last = (reg.va + reg.nbytes - 1) // PAGE_SIZE
            if r_first < end_vpn and r_last >= start_vpn:
                self.kernel.trace.emit(
                    "via_munmap_deregister", pid=task.pid,
                    handle=reg.handle, va=reg.va, nbytes=reg.nbytes)
                self.deregister_memory(reg.handle)

    # -------------------------------------------------------------------- VIs

    def create_vi(self, task: "Task",
                  reliability: ReliabilityLevel =
                  ReliabilityLevel.RELIABLE_DELIVERY,
                  send_cq: CompletionQueue | None = None,
                  recv_cq: CompletionQueue | None = None
                  ) -> VirtualInterface:
        """Create a VI for ``task`` under its protection tag."""
        self.kernel.clock.charge(self.kernel.costs.syscall_ns, "via_setup")
        tag = self.prot_tag(task)
        return self.nic.create_vi(task.pid, tag, reliability=reliability,
                                  send_cq=send_cq, recv_cq=recv_cq)
