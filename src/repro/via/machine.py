"""Machines and clusters: convenient top-level assembly.

A :class:`Machine` is one host — a kernel plus one VIA NIC and its
Kernel Agent, with a chosen locking backend.  A :class:`Cluster` builds
several machines sharing one simulated clock and one fabric, so
end-to-end latencies are measured on a single timeline.
"""

from __future__ import annotations

from repro.kernel.kernel import Kernel
from repro.kernel.task import Task
from repro.obs import Observability
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.trace import Trace
from repro.via.constants import ReliabilityLevel
from repro.via.fabric import Fabric
from repro.via.kernel_agent import KernelAgent
from repro.via.locking.base import LockingBackend
from repro.via.nic import VIANic
from repro.via.user_agent import UserAgent
from repro.via.vi import VirtualInterface


class Machine:
    """One host: kernel + NIC + Kernel Agent."""

    def __init__(self, name: str = "m0",
                 num_frames: int = 1024,
                 swap_slots: int = 8192,
                 costs: CostModel | None = None,
                 seed: int = 0,
                 backend: LockingBackend | str = "kiobuf",
                 tpt_entries: int = 8192,
                 clock: SimClock | None = None,
                 trace: Trace | None = None,
                 fabric: Fabric | None = None,
                 obs: Observability | None = None,
                 min_free_pages: int = 8,
                 tenant_quota_pages: int | None = None,
                 host_pin_ceiling_pages: int | None = None) -> None:
        self.name = name
        self.kernel = Kernel(num_frames=num_frames, swap_slots=swap_slots,
                             costs=costs, seed=seed, clock=clock,
                             trace=trace, obs=obs,
                             min_free_pages=min_free_pages)
        # Analysis events carry the machine name: frame numbers and pids
        # are host-local, so a cluster-wide sanitizer needs the label to
        # keep its per-host state machines apart.
        self.kernel.events.host = name
        self.nic = VIANic(f"{name}.nic0", self.kernel,
                          tpt_entries=tpt_entries)
        self.agent = KernelAgent(
            self.kernel, self.nic, backend=backend,
            tenant_quota_pages=tenant_quota_pages,
            host_pin_ceiling_pages=host_pin_ceiling_pages)
        self.fabric = fabric if fabric is not None else Fabric(seed=seed)
        self.fabric.attach(self.nic)

    @property
    def tenants(self):
        """The machine's tenant registration service (quota/admission)."""
        return self.agent.tenants

    @property
    def backend(self) -> LockingBackend:
        """The machine's locking backend."""
        return self.agent.backend

    @property
    def obs(self) -> Observability:
        """The machine's observability facade (possibly cluster-shared)."""
        return self.kernel.obs

    def inject_faults(self, plan):
        """Wire a :class:`~repro.sim.faults.FaultPlan` (or None to
        disarm) into this machine's fabric, NIC, DMA engine, and driver."""
        from repro.sim.faults import install
        return install(plan, self)

    def spawn(self, name: str = "", uid: int = 1000) -> Task:
        """Create a task on this machine."""
        return self.kernel.create_task(uid=uid, name=name)

    def user_agent(self, task: Task) -> UserAgent:
        """Open the NIC for ``task`` and return its user agent."""
        return UserAgent(self.agent, task)

    def connect_loopback(self, vi_a: VirtualInterface,
                         vi_b: VirtualInterface) -> None:
        """Connect two VIs of this machine's own NIC (loopback)."""
        self.fabric.connect(self.nic, vi_a.vi_id, self.nic, vi_b.vi_id)

    def arm_watchdog(self, **kwargs):
        """Arm an :class:`~repro.core.audit.InvariantWatchdog` on this
        machine and return it."""
        from repro.core.audit import InvariantWatchdog
        return InvariantWatchdog(**kwargs).arm(self)

    def arm_sanitizer(self, **kwargs):
        """Arm a :class:`~repro.analysis.sanitizer.PinSanitizer` on this
        machine and return it."""
        from repro.analysis.sanitizer import PinSanitizer
        return PinSanitizer(**kwargs).arm(self)

    def start_reaper(self, **kwargs):
        """Start an :class:`~repro.kernel.reaper.OrphanReaper` for this
        machine (installed as ``kernel.reaper``) and return it."""
        from repro.kernel.reaper import OrphanReaper
        reaper = OrphanReaper(self.kernel, agents=[self.agent], **kwargs)
        reaper.start()
        return reaper


class Cluster:
    """Several machines on one fabric with one shared clock."""

    def __init__(self, n: int = 2,
                 num_frames: int = 1024,
                 swap_slots: int = 8192,
                 costs: CostModel | None = None,
                 seed: int = 0,
                 backend: LockingBackend | str = "kiobuf",
                 tpt_entries: int = 8192,
                 min_free_pages: int = 8,
                 tenant_quota_pages: int | None = None,
                 host_pin_ceiling_pages: int | None = None) -> None:
        self.clock = SimClock()
        self.trace = Trace(self.clock)
        self.obs = Observability(self.clock)
        self.fabric = Fabric(seed=seed)
        self.machines: list[Machine] = []
        for i in range(n):
            # Each machine gets its own backend instance (driver state is
            # per host) but shares the clock, trace, fabric, and
            # observability (one metrics snapshot covers the cluster).
            from repro.via.locking import make_backend
            be = (make_backend(backend) if isinstance(backend, str)
                  else backend)
            self.machines.append(Machine(
                name=f"m{i}", num_frames=num_frames, swap_slots=swap_slots,
                costs=costs, seed=seed + i, backend=be,
                tpt_entries=tpt_entries, clock=self.clock,
                trace=self.trace, fabric=self.fabric, obs=self.obs,
                min_free_pages=min_free_pages,
                tenant_quota_pages=tenant_quota_pages,
                host_pin_ceiling_pages=host_pin_ceiling_pages))

    def inject_faults(self, plan):
        """Wire a :class:`~repro.sim.faults.FaultPlan` (or None to
        disarm) into the whole cluster."""
        from repro.sim.faults import install
        return install(plan, self)

    def arm_watchdog(self, **kwargs):
        """Arm one :class:`~repro.core.audit.InvariantWatchdog` over
        every machine in the cluster and return it."""
        from repro.core.audit import InvariantWatchdog
        return InvariantWatchdog(**kwargs).arm(self)

    def arm_sanitizer(self, **kwargs):
        """Arm one :class:`~repro.analysis.sanitizer.PinSanitizer` over
        every machine in the cluster and return it."""
        from repro.analysis.sanitizer import PinSanitizer
        return PinSanitizer(**kwargs).arm(self)

    def start_reapers(self, **kwargs):
        """Start one :class:`~repro.kernel.reaper.OrphanReaper` per
        machine; returns them in machine order."""
        return [m.start_reaper(**kwargs) for m in self.machines]

    def __getitem__(self, i: int) -> Machine:
        return self.machines[i]

    def __len__(self) -> int:
        return len(self.machines)

    def connect(self, vi_a: VirtualInterface, machine_a: Machine,
                vi_b: VirtualInterface, machine_b: Machine) -> None:
        """Connect a VI on one machine to a VI on another."""
        self.fabric.connect(machine_a.nic, vi_a.vi_id,
                            machine_b.nic, vi_b.vi_id)


def connected_pair(backend: LockingBackend | str = "kiobuf",
                   reliability: ReliabilityLevel =
                   ReliabilityLevel.RELIABLE_DELIVERY,
                   num_frames: int = 1024,
                   seed: int = 0,
                   **kwargs) -> tuple["Cluster", UserAgent, UserAgent,
                                      VirtualInterface, VirtualInterface]:
    """Test/bench helper: a two-machine cluster with one task per machine
    and one connected VI pair.  Returns
    ``(cluster, ua_sender, ua_receiver, vi_sender, vi_receiver)``."""
    cluster = Cluster(2, backend=backend, num_frames=num_frames, seed=seed,
                      **kwargs)
    sender = cluster[0].spawn("sender")
    receiver = cluster[1].spawn("receiver")
    ua_s = cluster[0].user_agent(sender)
    ua_r = cluster[1].user_agent(receiver)
    vi_s = ua_s.create_vi(reliability=reliability)
    vi_r = ua_r.create_vi(reliability=reliability)
    cluster.connect(vi_s, cluster[0], vi_r, cluster[1])
    return cluster, ua_s, ua_r, vi_s, vi_r
