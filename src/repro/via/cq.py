"""Completion queues.

A CQ aggregates completions from the work queues of several VIs, so one
poll loop can service many connections (how MPI progress engines use
VIA).  Attachment happens at VI creation time, per work queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque

from repro.analysis.events import COMPLETION

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.descriptor import Descriptor


@dataclass(frozen=True)
class Completion:
    """One completion notification."""

    vi_id: int
    queue: str              #: ``"send"`` or ``"recv"``
    descriptor: "Descriptor"
    #: typed original-value carry for remote atomics: the value the
    #: target word held before the RMW.  A dedicated field — atomics do
    #: not alias ``immediate_data`` (that carry is 4 bytes and already
    #: owned by send/RDMA-write semantics).
    atomic_original_value: int | None = None


class CompletionQueue:
    """FIFO of :class:`Completion` notifications."""

    def __init__(self, depth: int = 1024, obs=None, events=None) -> None:
        self.depth = depth
        self._items: Deque[Completion] = deque()
        self.overflows = 0
        #: optional :class:`~repro.obs.Observability` (wired by
        #: :meth:`UserAgent.create_cq`; standalone CQs stay unobserved)
        self.obs = obs
        #: optional :class:`~repro.analysis.events.EventHub` (wired by
        #: :meth:`UserAgent.create_cq`): observing a completion emits a
        #: COMPLETION event that acquires the posting DOORBELL's token,
        #: closing the publish/observe happens-before edge
        self.events = events

    def post(self, completion: Completion) -> None:
        """NIC side: append a completion (drops + counts on overflow,
        like real hardware with a full CQ)."""
        if len(self._items) >= self.depth:
            self.overflows += 1
            if self.obs is not None:
                self.obs.inc("via.cq.overflows")
            return
        self._items.append(completion)
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.metrics.gauge("via.cq.depth").set(len(self._items))

    def _note_observed(self, completion: Completion) -> None:
        events = self.events
        if events is not None and events.active:
            token = completion.descriptor.hb_token
            if token is not None:
                events.emit(COMPLETION, token=token, vi=completion.vi_id,
                            queue=completion.queue)

    def poll(self) -> Completion | None:
        """User side: pop the oldest completion, or None."""
        if self._items:
            completion = self._items.popleft()
            self._note_observed(completion)
            return completion
        return None

    def drain_batch(self, max_items: int | None = None,
                    ) -> list[Completion]:
        """User side: pop up to ``max_items`` completions (all queued
        completions when None) in FIFO order.

        The batched analogue of :meth:`poll` — one call services a whole
        burst of completions, so progress loops driving many VIs pay the
        call overhead once per drain instead of once per completion.
        """
        items = self._items
        if max_items is None or max_items >= len(items):
            out = list(items)
            items.clear()
        elif max_items <= 0:
            return []
        else:
            out = [items.popleft() for _ in range(max_items)]
        for completion in out:
            self._note_observed(completion)
        return out

    def drain_vi(self, vi_id: int) -> int:
        """Drop every queued completion belonging to ``vi_id``; returns
        how many were dropped.

        Used when a VI is torn down while its owner is dead: a CQ may be
        shared between VIs of several processes, and nobody should poll
        a dead process's notifications out of it.
        """
        before = len(self._items)
        self._items = deque(c for c in self._items if c.vi_id != vi_id)
        return before - len(self._items)

    def __len__(self) -> int:
        return len(self._items)
