"""The Translation and Protection Table (TPT).

"All memory which is to be used to hold descriptors or data buffers must
be registered in advance.  That means that all involved memory pages are
locked into physical memory and the addresses are stored in the NIC's
Translation and Protection Table."

The TPT records, **at registration time**, the physical frame of every
page of a region, together with the owner's protection tag and the
region's RDMA enables.  All later translation happens against these
recorded frames — the NIC has no way to notice that the kernel moved a
page.  That asymmetry is the entire failure mode of Section 3.1, so this
module deliberately performs *no* freshness checks.

Fast path.  Because frames are captured once, translation is a pure
function of the recorded frames — so the table can (a) merge physically
adjacent frames into maximal ``(addr, len)`` *extents* at registration
time and serve spans with one bisect instead of a per-page walk, and
(b) memoize whole translations in a bounded LRU cache keyed by
``(handle, va, length)``.  The cache is **invalidated** whenever a
region is removed (deregistration) or its recorded frames are mutated,
and can be flushed wholesale on a NIC reset — a cached translation must
never outlive the registration it was derived from.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.analysis.events import (
    TPT_INSERT, TPT_INVALIDATE, TPT_PAGE_INVALIDATE, TPT_TRANSLATE,
)
from repro.errors import (
    NotRegistered, ProtectionError, TranslationFault, ViaError,
)
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import (
    DEFAULT_TPT_ENTRIES, DEFAULT_TRANSLATION_CACHE_ENTRIES,
)

_handles = itertools.count(1)

#: Sentinel frame number of a TPT entry whose valid bit is clear.  An
#: ODP registration installs every entry like this; the fault-service
#: path patches real frames in just-in-time, and pressure-driven
#: eviction writes the sentinel back.
INVALID_FRAME = -1


class FrameList(list):
    """A frame list that versions in-place mutation.

    The extent map and the translation cache are derived from the
    recorded frames; tests (and the staleness experiments) simulate "the
    kernel moved a page" by assigning ``region.frames[i]`` directly, so
    every mutating operation bumps :attr:`version` and derived state is
    rebuilt on the next translation.
    """

    __slots__ = ("version",)

    def __init__(self, iterable=()) -> None:
        super().__init__(iterable)
        self.version = 0

    def _mutated(self) -> None:
        self.version += 1

    def __setitem__(self, *args):
        self._mutated()
        return super().__setitem__(*args)

    def __delitem__(self, *args):
        self._mutated()
        return super().__delitem__(*args)

    def __iadd__(self, other):
        self._mutated()
        return super().__iadd__(other)

    def append(self, *args):
        self._mutated()
        return super().append(*args)

    def extend(self, *args):
        self._mutated()
        return super().extend(*args)

    def insert(self, *args):
        self._mutated()
        return super().insert(*args)

    def pop(self, *args):
        self._mutated()
        return super().pop(*args)

    def remove(self, *args):
        self._mutated()
        return super().remove(*args)

    def clear(self):
        self._mutated()
        return super().clear()

    def sort(self, *args, **kwargs):
        self._mutated()
        return super().sort(*args, **kwargs)

    def reverse(self):
        self._mutated()
        return super().reverse()


def coalesce_frames(frames: list[int]) -> tuple[list[int], list[tuple[int, int]]]:
    """Merge per-page frames into maximal physically-contiguous extents.

    Returns ``(starts, extents)`` where ``extents[i]`` is
    ``(phys_base, nbytes)`` for the run beginning at page-relative byte
    offset ``starts[i]`` (offsets are relative to the region's
    page-aligned base; ``starts`` is sorted for bisecting).
    """
    starts: list[int] = []
    extents: list[tuple[int, int]] = []
    run_start = 0
    n = len(frames)
    for i in range(1, n + 1):
        if i == n or frames[i] != frames[i - 1] + 1:
            starts.append(run_start * PAGE_SIZE)
            extents.append((frames[run_start] * PAGE_SIZE,
                            (i - run_start) * PAGE_SIZE))
            run_start = i
    return starts, extents


@dataclass
class MemoryRegion:
    """One registered region: the NIC-visible view of a user buffer."""

    handle: int
    va_base: int                 #: user virtual base address
    nbytes: int
    prot_tag: int
    frames: list[int]            #: physical frame per page, captured at
                                 #: registration time
    rdma_write_enable: bool = False
    rdma_read_enable: bool = False
    rdma_atomic_enable: bool = False
    valid: bool = True
    #: on-demand-paging region: entries may carry :data:`INVALID_FRAME`
    #: and translation must check per-page validity (non-ODP regions
    #: skip that walk entirely, keeping the legacy fast path unchanged)
    odp: bool = False
    #: opaque cookie the locking backend returned; owned by the Kernel
    #: Agent, carried here so deregistration can find it
    lock_cookie: object = field(default=None, compare=False)
    #: lazily-built extent map: (starts, extents, frames-version)
    _extent_map: object = field(default=None, repr=False, compare=False)

    @property
    def npages(self) -> int:
        return len(self.frames)

    @property
    def first_vpn(self) -> int:
        return self.va_base // PAGE_SIZE

    @property
    def frames_version(self) -> int | None:
        """Version stamp of the recorded frames (None for plain lists,
        which are then treated as always-stale)."""
        return getattr(self.frames, "version", None)

    def extent_map(self) -> tuple[list[int], list[tuple[int, int]]]:
        """The coalesced extent map, rebuilt when the recorded frames
        were mutated since the last build."""
        cached = self._extent_map
        version = self.frames_version
        if cached is not None and version is not None \
                and cached[2] == version:
            return cached[0], cached[1]
        starts, extents = coalesce_frames(self.frames)
        self._extent_map = (starts, extents, version)
        return starts, extents

    @property
    def extents(self) -> list[tuple[int, int]]:
        """Maximal physically-contiguous ``(phys_base, nbytes)`` runs."""
        return self.extent_map()[1]

    def covers(self, va: int, length: int) -> bool:
        """True iff ``[va, va+length)`` lies inside the region."""
        return (length >= 0 and va >= self.va_base
                and va + length <= self.va_base + self.nbytes)

    def page_span(self, va: int, length: int) -> range:
        """Region-relative page indices touched by ``[va, va+length)``."""
        aligned_base = self.first_vpn * PAGE_SIZE
        first = (va - aligned_base) // PAGE_SIZE
        last = (va + max(length, 1) - 1 - aligned_base) // PAGE_SIZE
        return range(first, last + 1)

    def invalid_pages(self, va: int, length: int) -> tuple[int, ...]:
        """Region-relative indices of not-yet-resident pages in the span
        (only meaningful for ODP regions)."""
        frames = self.frames
        return tuple(i for i in self.page_span(va, length)
                     if frames[i] == INVALID_FRAME)

    @property
    def resident_pages(self) -> int:
        """Pages currently backed by a real frame."""
        return sum(1 for f in self.frames if f != INVALID_FRAME)


class TranslationProtectionTable:
    """Per-NIC table of registered regions.

    Capacity is counted in *page entries*, like real TPT silicon: a
    1024-entry TPT can hold e.g. one 1024-page region or 256 four-page
    regions.  Registration fails with ``VIP_ERROR_RESOURCE`` when full —
    the resource limit that forces MPI layers to deregister and motivates
    the registration cache.

    ``clock``/``costs`` are optional: when provided (the NIC wires its
    kernel's in), translation charges simulated time per extent, per
    page, or per cache hit, depending on which path served it.
    """

    def __init__(self, capacity_entries: int = DEFAULT_TPT_ENTRIES,
                 clock=None, costs=None,
                 translation_cache_entries: int =
                 DEFAULT_TRANSLATION_CACHE_ENTRIES, events=None) -> None:
        self.capacity_entries = capacity_entries
        self.regions: dict[int, MemoryRegion] = {}
        self.entries_used = 0
        self._clock = clock
        self._costs = costs
        #: analysis EventHub for TPT lifecycle events (optional)
        self._events = events
        #: serve translations from coalesced extents (False restores the
        #: legacy per-page walk for A/B benchmarking)
        self.coalesce_extents = True
        #: bounded LRU of memoized translations; 0 disables
        self.translation_cache_entries = translation_cache_entries
        self._xcache: OrderedDict[tuple, tuple] = OrderedDict()
        self._xcache_by_handle: dict[int, set[tuple]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0

    # -- registration ----------------------------------------------------------

    def install(self, va_base: int, nbytes: int, prot_tag: int,
                frames: list[int], rdma_write: bool = False,
                rdma_read: bool = False, rdma_atomic: bool = False,
                lock_cookie: object = None, odp: bool = False
                ) -> MemoryRegion:
        """Install a region; returns it with a fresh handle."""
        if len(frames) == 0:
            raise ViaError("cannot register an empty region")
        if self.entries_used + len(frames) > self.capacity_entries:
            raise ViaError(
                f"TPT full: {self.entries_used}/{self.capacity_entries} "
                f"entries used, {len(frames)} requested",
                status="VIP_ERROR_RESOURCE")
        region = MemoryRegion(
            handle=next(_handles), va_base=va_base, nbytes=nbytes,
            prot_tag=prot_tag, frames=FrameList(frames),
            rdma_write_enable=rdma_write, rdma_read_enable=rdma_read,
            rdma_atomic_enable=rdma_atomic, lock_cookie=lock_cookie,
            odp=odp)
        self.regions[region.handle] = region
        self.entries_used += len(frames)
        events = self._events
        if events is not None and events.active:
            events.emit(TPT_INSERT, handle=region.handle,
                        frames=tuple(f for f in frames
                                     if f != INVALID_FRAME),
                        first_vpn=region.first_vpn, npages=len(frames),
                        odp=odp)
        return region

    # -- ODP valid-bit maintenance -------------------------------------------

    def patch(self, handle: int, pages: dict[int, int]) -> None:
        """Write real frames behind ODP entries (fault-service path).

        ``pages`` maps region-relative page index → frame.  Assigning
        through the :class:`FrameList` bumps its version, so stale
        cached translations and the extent map rebuild on the next use.
        """
        region = self.lookup(handle)
        if not region.odp:
            raise ViaError(f"handle {handle} is not an ODP region")
        for index, frame in pages.items():
            region.frames[index] = frame

    def invalidate_pages(self, handle: int, pages: list[int]
                         ) -> tuple[int, ...]:
        """Clear the valid bit of individual ODP entries (eviction path).

        The region itself stays registered — unlike :meth:`remove`, a
        later DMA touching these pages takes a translation fault and the
        fault service brings them back.  Returns the frames that were
        resident behind the invalidated entries.
        """
        region = self.lookup(handle)
        if not region.odp:
            raise ViaError(f"handle {handle} is not an ODP region")
        dropped: list[int] = []
        for index in pages:
            frame = region.frames[index]
            if frame != INVALID_FRAME:
                dropped.append(frame)
                region.frames[index] = INVALID_FRAME
        self.invalidate_translations(handle)
        if self._costs is not None:
            self._charge(len(pages) * self._costs.odp_invalidate_page_ns)
        events = self._events
        if events is not None and events.active:
            events.emit(TPT_PAGE_INVALIDATE, handle=handle,
                        pages=tuple(pages), frames=tuple(dropped))
        return tuple(dropped)

    def remove(self, handle: int) -> MemoryRegion:
        """Invalidate and drop a region; returns it (for its cookie).

        Any cached translations derived from the region are discarded —
        a stale translation served after deregistration would be exactly
        the failure mode the paper's mechanism exists to prevent.
        """
        region = self.regions.pop(handle, None)
        if region is None:
            raise NotRegistered(f"no region with handle {handle}")
        region.valid = False
        self.entries_used -= region.npages
        self.invalidate_translations(handle)
        events = self._events
        if events is not None and events.active:
            events.emit(TPT_INVALIDATE, handle=handle)
        return region

    def lookup(self, handle: int) -> MemoryRegion:
        """The region for ``handle`` (must be valid)."""
        region = self.regions.get(handle)
        if region is None or not region.valid:
            raise NotRegistered(f"no region with handle {handle}")
        return region

    # -- translation cache ---------------------------------------------------

    def invalidate_translations(self, handle: int | None = None) -> int:
        """Drop cached translations — for one handle, or all of them
        (``handle=None``, the NIC-reset path).  Returns how many cached
        spans were discarded."""
        if handle is None:
            dropped = len(self._xcache)
            self._xcache.clear()
            self._xcache_by_handle.clear()
        else:
            keys = self._xcache_by_handle.pop(handle, ())
            dropped = 0
            for key in keys:
                if self._xcache.pop(key, None) is not None:
                    dropped += 1
        self.cache_invalidations += dropped
        return dropped

    def _cache_put(self, key: tuple, segments: list[tuple[int, int]],
                   version: int | None) -> None:
        cache = self._xcache
        limit = self.translation_cache_entries
        while len(cache) >= limit:
            old_key, _ = cache.popitem(last=False)
            owners = self._xcache_by_handle.get(old_key[0])
            if owners is not None:
                owners.discard(old_key)
                if not owners:
                    del self._xcache_by_handle[old_key[0]]
        cache[key] = (segments, version)
        self._xcache_by_handle.setdefault(key[0], set()).add(key)

    def _charge(self, ns: int) -> None:
        if self._clock is not None and ns:
            self._clock.charge(ns, "via_nic")

    # -- translation --------------------------------------------------------------

    def translate(self, handle: int, va: int, length: int, prot_tag: int,
                  *, rdma_write: bool = False, rdma_read: bool = False,
                  rdma_atomic: bool = False) -> list[tuple[int, int]]:
        """Translate ``[va, va+length)`` of a region into flat physical
        ``(addr, len)`` segments, enforcing protection.

        Checks, in hardware order:

        1. the handle names a valid region (``VIP_INVALID_MEMORY``),
        2. the protection tag of the requesting VI equals the region's
           tag (``VIP_PROTECTION_ERROR``),
        3. the access kind is enabled on the region (RDMA enables),
        4. the span lies within the region.

        What is *not* checked — because the hardware cannot — is whether
        the recorded frames still back the owner's virtual pages.

        Protection is enforced on **every** call; only the segment list
        itself is memoized, and a memoized list is served only while the
        region's recorded frames are unchanged since it was built.
        """
        region = self.lookup(handle)
        if region.prot_tag != prot_tag:
            raise ProtectionError(
                f"protection tag mismatch on handle {handle}: region tag "
                f"{region.prot_tag}, VI tag {prot_tag}")
        if rdma_write and not region.rdma_write_enable:
            raise ProtectionError(
                f"RDMA write not enabled on handle {handle}")
        if rdma_read and not region.rdma_read_enable:
            raise ProtectionError(
                f"RDMA read not enabled on handle {handle}")
        if rdma_atomic and not region.rdma_atomic_enable:
            raise ProtectionError(
                f"remote atomics not enabled on handle {handle}")
        if not region.covers(va, length):
            raise NotRegistered(
                f"span [{va}, {va + length}) outside region "
                f"[{region.va_base}, {region.va_base + region.nbytes})")
        if region.odp:
            missing = region.invalid_pages(va, length)
            if missing:
                raise TranslationFault(
                    f"handle {handle}: pages {missing} not resident",
                    handle=handle, va=va, length=length, pages=missing)

        version = region.frames_version
        key = (handle, va, length)
        if self.translation_cache_entries > 0:
            cached = self._xcache.get(key)
            if cached is not None and version is not None \
                    and cached[1] == version:
                self._xcache.move_to_end(key)
                self.cache_hits += 1
                self._charge(self._costs.tpt_cache_hit_ns
                             if self._costs else 0)
                events = self._events
                if events is not None and events.active:
                    events.emit(TPT_TRANSLATE, handle=handle, va=va,
                                length=length, cached=True)
                return list(cached[0])
            self.cache_misses += 1

        if self.coalesce_extents:
            segments = self._translate_extents(region, va, length)
            if self._costs is not None:
                self._charge(len(segments)
                             * self._costs.tpt_translate_extent_ns)
        else:
            segments = self._translate_pages(region, va, length)
            if self._costs is not None:
                self._charge(len(segments)
                             * self._costs.tpt_translate_page_ns)

        if self.translation_cache_entries > 0:
            self._cache_put(key, segments, version)
        events = self._events
        if events is not None and events.active:
            events.emit(TPT_TRANSLATE, handle=handle, va=va,
                        length=length, cached=False)
        return list(segments)

    @staticmethod
    def _translate_extents(region: MemoryRegion, va: int, length: int
                           ) -> list[tuple[int, int]]:
        """Serve a span from the coalesced extent map: one segment per
        physically-contiguous run touched, found by bisect."""
        starts, extents = region.extent_map()
        rel = va - region.first_vpn * PAGE_SIZE
        segments: list[tuple[int, int]] = []
        remaining = length
        idx = bisect_right(starts, rel) - 1
        while remaining > 0:
            ext_start = starts[idx]
            phys_base, ext_len = extents[idx]
            offset = rel - ext_start
            n = min(remaining, ext_len - offset)
            segments.append((phys_base + offset, n))
            rel += n
            remaining -= n
            idx += 1
        return segments

    @staticmethod
    def _translate_pages(region: MemoryRegion, va: int, length: int
                         ) -> list[tuple[int, int]]:
        """The legacy page-by-page walk (one segment per page)."""
        segments: list[tuple[int, int]] = []
        remaining = length
        cursor = va
        aligned_base = region.first_vpn * PAGE_SIZE
        while remaining > 0:
            page_index = (cursor - aligned_base) // PAGE_SIZE
            offset = cursor % PAGE_SIZE
            n = min(remaining, PAGE_SIZE - offset)
            frame = region.frames[page_index]
            segments.append((frame * PAGE_SIZE + offset, n))
            cursor += n
            remaining -= n
        return segments

    @property
    def entries_free(self) -> int:
        """Remaining page-entry capacity."""
        return self.capacity_entries - self.entries_used

    @property
    def cached_translations(self) -> int:
        """Number of memoized spans currently held."""
        return len(self._xcache)
