"""The Translation and Protection Table (TPT).

"All memory which is to be used to hold descriptors or data buffers must
be registered in advance.  That means that all involved memory pages are
locked into physical memory and the addresses are stored in the NIC's
Translation and Protection Table."

The TPT records, **at registration time**, the physical frame of every
page of a region, together with the owner's protection tag and the
region's RDMA enables.  All later translation happens against these
recorded frames — the NIC has no way to notice that the kernel moved a
page.  That asymmetry is the entire failure mode of Section 3.1, so this
module deliberately performs *no* freshness checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import NotRegistered, ProtectionError, ViaError
from repro.hw.physmem import PAGE_SIZE
from repro.via.constants import DEFAULT_TPT_ENTRIES

_handles = itertools.count(1)


@dataclass
class MemoryRegion:
    """One registered region: the NIC-visible view of a user buffer."""

    handle: int
    va_base: int                 #: user virtual base address
    nbytes: int
    prot_tag: int
    frames: list[int]            #: physical frame per page, captured at
                                 #: registration time
    rdma_write_enable: bool = False
    rdma_read_enable: bool = False
    valid: bool = True
    #: opaque cookie the locking backend returned; owned by the Kernel
    #: Agent, carried here so deregistration can find it
    lock_cookie: object = field(default=None, compare=False)

    @property
    def npages(self) -> int:
        return len(self.frames)

    @property
    def first_vpn(self) -> int:
        return self.va_base // PAGE_SIZE

    def covers(self, va: int, length: int) -> bool:
        """True iff ``[va, va+length)`` lies inside the region."""
        return (length >= 0 and va >= self.va_base
                and va + length <= self.va_base + self.nbytes)


class TranslationProtectionTable:
    """Per-NIC table of registered regions.

    Capacity is counted in *page entries*, like real TPT silicon: a
    1024-entry TPT can hold e.g. one 1024-page region or 256 four-page
    regions.  Registration fails with ``VIP_ERROR_RESOURCE`` when full —
    the resource limit that forces MPI layers to deregister and motivates
    the registration cache.
    """

    def __init__(self, capacity_entries: int = DEFAULT_TPT_ENTRIES) -> None:
        self.capacity_entries = capacity_entries
        self.regions: dict[int, MemoryRegion] = {}
        self.entries_used = 0

    # -- registration ----------------------------------------------------------

    def install(self, va_base: int, nbytes: int, prot_tag: int,
                frames: list[int], rdma_write: bool = False,
                rdma_read: bool = False,
                lock_cookie: object = None) -> MemoryRegion:
        """Install a region; returns it with a fresh handle."""
        if len(frames) == 0:
            raise ViaError("cannot register an empty region")
        if self.entries_used + len(frames) > self.capacity_entries:
            raise ViaError(
                f"TPT full: {self.entries_used}/{self.capacity_entries} "
                f"entries used, {len(frames)} requested",
                status="VIP_ERROR_RESOURCE")
        region = MemoryRegion(
            handle=next(_handles), va_base=va_base, nbytes=nbytes,
            prot_tag=prot_tag, frames=list(frames),
            rdma_write_enable=rdma_write, rdma_read_enable=rdma_read,
            lock_cookie=lock_cookie)
        self.regions[region.handle] = region
        self.entries_used += len(frames)
        return region

    def remove(self, handle: int) -> MemoryRegion:
        """Invalidate and drop a region; returns it (for its cookie)."""
        region = self.regions.pop(handle, None)
        if region is None:
            raise NotRegistered(f"no region with handle {handle}")
        region.valid = False
        self.entries_used -= region.npages
        return region

    def lookup(self, handle: int) -> MemoryRegion:
        """The region for ``handle`` (must be valid)."""
        region = self.regions.get(handle)
        if region is None or not region.valid:
            raise NotRegistered(f"no region with handle {handle}")
        return region

    # -- translation --------------------------------------------------------------

    def translate(self, handle: int, va: int, length: int, prot_tag: int,
                  *, rdma_write: bool = False,
                  rdma_read: bool = False) -> list[tuple[int, int]]:
        """Translate ``[va, va+length)`` of a region into flat physical
        ``(addr, len)`` segments, enforcing protection.

        Checks, in hardware order:

        1. the handle names a valid region (``VIP_INVALID_MEMORY``),
        2. the protection tag of the requesting VI equals the region's
           tag (``VIP_PROTECTION_ERROR``),
        3. the access kind is enabled on the region (RDMA enables),
        4. the span lies within the region.

        What is *not* checked — because the hardware cannot — is whether
        the recorded frames still back the owner's virtual pages.
        """
        region = self.lookup(handle)
        if region.prot_tag != prot_tag:
            raise ProtectionError(
                f"protection tag mismatch on handle {handle}: region tag "
                f"{region.prot_tag}, VI tag {prot_tag}")
        if rdma_write and not region.rdma_write_enable:
            raise ProtectionError(
                f"RDMA write not enabled on handle {handle}")
        if rdma_read and not region.rdma_read_enable:
            raise ProtectionError(
                f"RDMA read not enabled on handle {handle}")
        if not region.covers(va, length):
            raise NotRegistered(
                f"span [{va}, {va + length}) outside region "
                f"[{region.va_base}, {region.va_base + region.nbytes})")
        segments: list[tuple[int, int]] = []
        remaining = length
        cursor = va
        while remaining > 0:
            page_index = (cursor - region.first_vpn * PAGE_SIZE) // PAGE_SIZE
            offset = cursor % PAGE_SIZE
            n = min(remaining, PAGE_SIZE - offset)
            frame = region.frames[page_index]
            segments.append((frame * PAGE_SIZE + offset, n))
            cursor += n
            remaining -= n
        return segments

    @property
    def entries_free(self) -> int:
        """Remaining page-entry capacity."""
        return self.capacity_entries - self.entries_used
