"""VIA connection management — the VIPL client/server model.

"Two principles exist for the connection of two VI's, a client-server
based one and a peer-to-peer based one" (Schindler et al., this
collection).  This module implements the client/server model:

* a server parks a VI under a *discriminator* (``VipConnectWait``),
* a client addresses ``(remote NIC, discriminator)``
  (``VipConnectRequest``); the manager matches them, checks reliability
  compatibility, and completes the connection.

The peer-to-peer model (both sides naming each other directly) is what
:meth:`repro.via.fabric.Fabric.connect` already provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ViaConnectionError
from repro.via.constants import ViState

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.fabric import Fabric
    from repro.via.nic import VIANic
    from repro.via.vi import VirtualInterface


@dataclass
class _Listener:
    nic: "VIANic"
    vi: "VirtualInterface"
    discriminator: bytes


class ConnectionManager:
    """Matchmaker for client/server VI connections on one fabric."""

    def __init__(self, fabric: "Fabric") -> None:
        self.fabric = fabric
        #: (nic_name, discriminator) → listener
        self._listeners: dict[tuple[str, bytes], _Listener] = {}
        self.connects_completed = 0

    # -- server side -----------------------------------------------------------

    def listen(self, nic: "VIANic", vi: "VirtualInterface",
               discriminator: bytes) -> None:
        """``VipConnectWait``: park ``vi`` awaiting a client that names
        ``(nic, discriminator)``.  One listener per address."""
        if vi.state != ViState.IDLE:
            raise ViaConnectionError(
                f"VI {vi.vi_id} must be idle to listen "
                f"(is {vi.state.value})")
        key = (nic.name, bytes(discriminator))
        if key in self._listeners:
            raise ViaConnectionError(
                f"discriminator {discriminator!r} already has a listener "
                f"on {nic.name}")
        self._listeners[key] = _Listener(nic, vi, bytes(discriminator))

    def unlisten(self, nic: "VIANic", discriminator: bytes) -> None:
        """Cancel a pending listen (idempotent)."""
        self._listeners.pop((nic.name, bytes(discriminator)), None)

    # -- client side ------------------------------------------------------------

    def connect_request(self, nic: "VIANic", vi: "VirtualInterface",
                        remote_nic_name: str,
                        discriminator: bytes) -> "VirtualInterface":
        """``VipConnectRequest``: connect ``vi`` to whatever is listening
        at ``(remote_nic_name, discriminator)``.

        Returns the server-side VI.  With no listener present the request
        fails immediately (the synchronous-simulator equivalent of the
        spec's connection timeout).
        """
        key = (remote_nic_name, bytes(discriminator))
        listener = self._listeners.get(key)
        if listener is None:
            raise ViaConnectionError(
                f"no listener at {remote_nic_name}/{discriminator!r} "
                f"(connection timeout)")
        if listener.vi.reliability != vi.reliability:
            # The spec rejects the request; the listener keeps waiting.
            raise ViaConnectionError(
                f"reliability mismatch: client "
                f"{vi.reliability.value}, server "
                f"{listener.vi.reliability.value}")
        del self._listeners[key]
        self.fabric.connect(nic, vi.vi_id, listener.nic,
                            listener.vi.vi_id)
        self.connects_completed += 1
        return listener.vi

    @property
    def pending(self) -> int:
        """Number of parked listeners."""
        return len(self._listeners)
