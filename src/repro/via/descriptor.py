"""VIA descriptors.

"VIA communication is completely based on explicit descriptor
processing" — a descriptor names registered memory (memory handle +
virtual address + length per segment) plus, for RDMA, the remote handle
and address.  The NIC reads descriptors from host memory (we charge that
DMA fetch) and completes them in place.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import DescriptorError
from repro.via.constants import (
    ATOMIC_OPERAND_BYTES, ATOMIC_OPERAND_MASK, ATOMIC_TYPES,
    IMMEDIATE_DATA_BYTES, MAX_SEGMENTS, VIP_NOT_DONE, DescriptorType,
)

_desc_ids = itertools.count(1)


@dataclass
class DataSegment:
    """One scatter/gather segment of registered memory."""

    mem_handle: int   #: handle returned by memory registration
    va: int           #: virtual address within the registered region
    length: int

    def validate(self) -> None:
        """Reject malformed segments before posting."""
        if self.length < 0:
            raise DescriptorError(f"negative segment length {self.length}")


@dataclass
class Descriptor:
    """One VIA work-queue descriptor.

    Completion state (``done``/``status``/``length_transferred``) is
    written by the NIC; user code polls it (``VipSendDone`` style).
    """

    dtype: DescriptorType
    segments: list[DataSegment] = field(default_factory=list)
    #: up to 4 bytes travelling inside the descriptor itself
    immediate_data: bytes | None = None
    #: RDMA/atomic only: target registered region on the remote node
    remote_handle: int | None = None
    remote_va: int | None = None
    #: atomic operands (64-bit): CMPSWAP uses ``compare``/``swap``,
    #: FETCHADD uses ``add``
    compare: int | None = None
    swap: int | None = None
    add: int | None = None

    # -- completion fields (owned by the NIC) --------------------------------
    done: bool = False
    status: str = VIP_NOT_DONE
    length_transferred: int = 0
    #: immediate data delivered into a receive descriptor
    received_immediate: bytes | None = None
    #: value the target word held before an atomic executed (typed field;
    #: atomics never alias ``immediate_data``)
    atomic_original_value: int | None = None
    #: simulated time the NIC accepted the descriptor (stamped at post;
    #: the orphan reaper uses it to age out abandoned descriptors)
    posted_at_ns: int | None = None
    #: happens-before token stamped at post when the analysis stream is
    #: armed: the NIC's DOORBELL release and the CQ's COMPLETION acquire
    #: are keyed by it, giving the race engine the publish/observe edge
    hb_token: int | None = None

    desc_id: int = field(default_factory=lambda: next(_desc_ids))

    # -- helpers ----------------------------------------------------------------

    @property
    def total_length(self) -> int:
        """Sum of segment lengths."""
        return sum(s.length for s in self.segments)

    def validate(self) -> None:
        """Sanity-check the descriptor before posting."""
        if len(self.segments) > MAX_SEGMENTS:
            raise DescriptorError(
                f"{len(self.segments)} segments exceed the {MAX_SEGMENTS}-"
                f"segment limit")
        for seg in self.segments:
            seg.validate()
        if (self.immediate_data is not None
                and len(self.immediate_data) > IMMEDIATE_DATA_BYTES):
            raise DescriptorError(
                f"immediate data limited to {IMMEDIATE_DATA_BYTES} bytes")
        if (self.dtype in (DescriptorType.RDMA_WRITE,
                           DescriptorType.RDMA_READ)
                or self.dtype in ATOMIC_TYPES):
            if self.remote_handle is None or self.remote_va is None:
                raise DescriptorError(
                    f"{self.dtype.value} descriptor needs remote_handle "
                    f"and remote_va")
        elif self.remote_handle is not None or self.remote_va is not None:
            raise DescriptorError(
                f"{self.dtype.value} descriptor must not carry remote "
                f"addressing")
        # `is not None`: zero-length immediate data is still immediate
        # data and must not slip through a truthiness check.
        if (self.dtype == DescriptorType.RDMA_READ
                and self.immediate_data is not None):
            raise DescriptorError("RDMA read cannot carry immediate data")
        if self.dtype in ATOMIC_TYPES:
            self._validate_atomic()
        elif (self.compare is not None or self.swap is not None
                or self.add is not None):
            raise DescriptorError(
                f"{self.dtype.value} descriptor must not carry atomic "
                f"operands")

    def _validate_atomic(self) -> None:
        """Atomic-specific shape rules (VIA has no atomics; these follow
        the InfiniBand verbs they are modelled on)."""
        if self.immediate_data is not None:
            raise DescriptorError(
                f"{self.dtype.value} cannot carry immediate data; the "
                f"original value returns in atomic_original_value")
        if len(self.segments) != 1:
            raise DescriptorError(
                f"{self.dtype.value} needs exactly one local segment for "
                f"the original value, got {len(self.segments)}")
        seg = self.segments[0]
        if seg.length != ATOMIC_OPERAND_BYTES:
            raise DescriptorError(
                f"{self.dtype.value} local segment must be "
                f"{ATOMIC_OPERAND_BYTES} bytes, got {seg.length}")
        assert self.remote_va is not None
        if self.remote_va % ATOMIC_OPERAND_BYTES:
            raise DescriptorError(
                f"atomic target va {self.remote_va:#x} is not "
                f"{ATOMIC_OPERAND_BYTES}-byte aligned")
        if self.dtype == DescriptorType.ATOMIC_CMPSWAP:
            wanted = {"compare": self.compare, "swap": self.swap}
            stray = {"add": self.add}
        else:
            wanted = {"add": self.add}
            stray = {"compare": self.compare, "swap": self.swap}
        for name, value in wanted.items():
            if value is None:
                raise DescriptorError(
                    f"{self.dtype.value} requires operand {name!r}")
            if not 0 <= value <= ATOMIC_OPERAND_MASK:
                raise DescriptorError(
                    f"atomic operand {name!r}={value} outside the "
                    f"unsigned 64-bit range")
        for name, value in stray.items():
            if value is not None:
                raise DescriptorError(
                    f"{self.dtype.value} must not carry operand {name!r}")

    def complete(self, status: str, length: int = 0) -> None:
        """Mark the descriptor finished (NIC side)."""
        self.done = True
        self.status = status
        self.length_transferred = length

    # -- constructors ------------------------------------------------------------

    @classmethod
    def send(cls, segments: list[DataSegment],
             immediate: bytes | None = None) -> "Descriptor":
        """Build a send descriptor."""
        return cls(DescriptorType.SEND, segments, immediate_data=immediate)

    @classmethod
    def recv(cls, segments: list[DataSegment]) -> "Descriptor":
        """Build a receive descriptor."""
        return cls(DescriptorType.RECV, segments)

    @classmethod
    def rdma_write(cls, segments: list[DataSegment], remote_handle: int,
                   remote_va: int,
                   immediate: bytes | None = None) -> "Descriptor":
        """Build an RDMA-write descriptor (one-sided; consumes a remote
        receive descriptor only when immediate data is attached)."""
        return cls(DescriptorType.RDMA_WRITE, segments,
                   immediate_data=immediate, remote_handle=remote_handle,
                   remote_va=remote_va)

    @classmethod
    def rdma_read(cls, segments: list[DataSegment], remote_handle: int,
                  remote_va: int) -> "Descriptor":
        """Build an RDMA-read descriptor (data flows remote → local)."""
        return cls(DescriptorType.RDMA_READ, segments,
                   remote_handle=remote_handle, remote_va=remote_va)

    @classmethod
    def atomic_cmpswap(cls, segments: list[DataSegment], remote_handle: int,
                       remote_va: int, compare: int,
                       swap: int) -> "Descriptor":
        """Build a compare-and-swap descriptor: iff the remote word equals
        ``compare``, store ``swap``; the original value lands in the one
        local segment and in ``atomic_original_value``."""
        return cls(DescriptorType.ATOMIC_CMPSWAP, segments,
                   remote_handle=remote_handle, remote_va=remote_va,
                   compare=compare, swap=swap)

    @classmethod
    def atomic_fetchadd(cls, segments: list[DataSegment], remote_handle: int,
                        remote_va: int, add: int) -> "Descriptor":
        """Build a fetch-and-add descriptor: add ``add`` to the remote
        word (mod 2^64) and return the original value."""
        return cls(DescriptorType.ATOMIC_FETCHADD, segments,
                   remote_handle=remote_handle, remote_va=remote_va,
                   add=add)
