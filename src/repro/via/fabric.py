"""The interconnect fabric between VIA NICs.

Delivery is synchronous and deterministic: transmitting a packet calls
straight into the destination NIC's delivery routine, charging wire
latency to the (shared) simulated clock.  Faults can be injected two
ways: the legacy ``loss_rate`` drops packets uniformly, and an installed
:class:`~repro.sim.faults.FaultPlan` can additionally duplicate,
corrupt, or delay them.

For ``UNRELIABLE`` VIs a drop is silent (fire-and-forget).  For the
RELIABLE levels the fabric reports what happened to the sending NIC as
an :class:`Attempt` — delivered-and-ACKed, dropped, NACKed (the
link-layer CRC caught corruption), or delivered-but-ACK-lost — and the
*NIC* runs the retransmission protocol on top
(:meth:`~repro.via.nic.VIANic._transmit_reliable`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import ViaConnectionError
from repro.sim.rng import make_rng
from repro.via.constants import (
    VIP_ERROR_CONN_LOST, VIP_SUCCESS, DescriptorType, ReliabilityLevel,
    ViState,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.faults import FaultPlan
    from repro.via.nic import VIANic


def payload_checksum(payload: bytes) -> int:
    """The link-layer CRC a NIC stamps on (and verifies against) a
    packet's payload."""
    return zlib.crc32(payload)


@dataclass
class Packet:
    """One fabric packet (a VIA transfer fits in one simulator packet;
    segmentation does not change any behaviour the paper reasons about)."""

    kind: DescriptorType
    src_nic: str
    src_vi: int
    dst_nic: str
    dst_vi: int
    payload: bytes = b""
    immediate: bytes | None = None
    #: RDMA only
    remote_handle: int | None = None
    remote_va: int | None = None
    #: RDMA read only: how many bytes to fetch
    read_length: int = 0
    #: atomic only: 64-bit operands (CMPSWAP: compare/swap, FETCHADD: add)
    compare: int | None = None
    swap: int | None = None
    add: int | None = None
    #: sequence number on RELIABLE VIs (0 = unsequenced)
    seq: int = 0
    #: link-layer CRC of ``payload`` (None = sender did not stamp one)
    checksum: int | None = None


@dataclass
class Attempt:
    """Outcome of one wire attempt of a RELIABLE packet."""

    #: ``delivered`` | ``dropped`` | ``nack`` | ``ack_lost``
    kind: str
    #: receiver's completion status (``delivered``/``ack_lost`` only)
    status: str | None = None

    @property
    def acked(self) -> bool:
        return self.kind == "delivered"


class Fabric:
    """Registry of NICs plus the wire between them."""

    def __init__(self, seed: int = 0, loss_rate: float = 0.0) -> None:
        self.nics: dict[str, "VIANic"] = {}
        self.loss_rate = loss_rate
        self._rng = make_rng(seed)
        self.packets_sent = 0
        self.packets_dropped = 0
        #: implicit hardware ACKs of RELIABLE deliveries (not counted as
        #: packets, so unreliable accounting is unchanged)
        self.acks_sent = 0
        self.acks_dropped = 0
        self.packets_nacked = 0
        self.fault_plan: "FaultPlan | None" = None
        self._connmgr = None

    @property
    def connmgr(self):
        """The fabric's client/server connection manager (lazy)."""
        if self._connmgr is None:
            from repro.via.connmgr import ConnectionManager
            self._connmgr = ConnectionManager(self)
        return self._connmgr

    # -- topology -----------------------------------------------------------

    def attach(self, nic: "VIANic") -> None:
        """Attach a NIC; names must be unique fabric-wide."""
        if nic.name in self.nics:
            raise ViaConnectionError(f"NIC name {nic.name!r} already attached")
        self.nics[nic.name] = nic
        nic.fabric = self

    def nic(self, name: str) -> "VIANic":
        """Look an attached NIC up by name."""
        nic = self.nics.get(name)
        if nic is None:
            raise ViaConnectionError(f"no NIC named {name!r} on this fabric")
        return nic

    # -- connection management ------------------------------------------------

    def connect(self, nic_a: "VIANic", vi_a: int, nic_b: "VIANic",
                vi_b: int) -> None:
        """Connect two VIs point-to-point (client/server handshake
        collapsed into one deterministic step)."""
        a = nic_a.vi(vi_a)
        b = nic_b.vi(vi_b)
        if a.state != ViState.IDLE or b.state != ViState.IDLE:
            raise ViaConnectionError(
                f"both VIs must be idle (got {a.state.value}, "
                f"{b.state.value})")
        if a.reliability != b.reliability:
            raise ViaConnectionError(
                f"reliability mismatch: {a.reliability.value} vs "
                f"{b.reliability.value}")
        if a is b:
            raise ViaConnectionError("cannot connect a VI to itself")
        a.peer = (nic_b.name, vi_b)
        b.peer = (nic_a.name, vi_a)
        a.state = b.state = ViState.CONNECTED

    def disconnect(self, nic_a: "VIANic", vi_a: int) -> None:
        """Tear a connection down from one side; the peer goes to ERROR
        if it was still connected (it lost its connection).

        The peer may already be *gone*, not just disconnected: when both
        ranks of a pair exit, the first exit destroys its VI while the
        survivor's ``peer`` pointer still names it.  A dangling peer is
        simply nothing to notify — it must not make the second teardown
        fail."""
        a = nic_a.vi(vi_a)
        if a.peer is not None:
            peer_nic, peer_vi = a.peer
            nic_b = self.nics.get(peer_nic)
            b = nic_b.vis.get(peer_vi) if nic_b is not None else None
            if b is not None and b.state == ViState.CONNECTED:
                b.enter_error()
        a.peer = None
        a.state = ViState.IDLE

    # -- the wire -----------------------------------------------------------------

    def _charge_wire(self, nic: "VIANic", nbytes: int) -> None:
        costs = nic.kernel.costs
        nic.kernel.clock.charge(costs.nic_wire_latency_ns, "wire")
        nic.kernel.clock.charge(costs.dma_ns(nbytes), "wire")

    def _roll_drop(self) -> bool:
        """One drop decision, combining the fault plan and the legacy
        uniform ``loss_rate``."""
        if self.fault_plan is not None and self.fault_plan.should_drop():
            return True
        return self.loss_rate > 0.0 and self._rng.random() < self.loss_rate

    def attempt_delivery(self, src: "VIANic", packet: Packet,
                         reliability: ReliabilityLevel) -> Attempt:
        """One wire attempt: carry ``packet`` to its destination,
        injecting any planned faults, and report what happened.

        For RELIABLE levels a successful delivery also generates the
        implicit hardware ACK, which can itself be lost — the sender
        must then retransmit and rely on receiver-side deduplication.
        """
        plan = self.fault_plan
        trace = src.kernel.trace
        obs = src.kernel.obs
        self.packets_sent += 1
        if obs.enabled:
            obs.metrics.counter("via.fabric.packets_sent").inc()

        self._charge_wire(src, len(packet.payload))

        # Fast path: a healthy fabric (no fault plan, no legacy loss
        # rate) delivers without rolling for drops, corruption,
        # duplication, or ACK loss — the common case of the hot
        # send/receive loop pays for none of the fault machinery.
        if plan is None and self.loss_rate == 0.0:
            if (packet.checksum is not None
                    and payload_checksum(packet.payload)
                    != packet.checksum):
                self.packets_nacked += 1
                obs.inc("via.fabric.packets_nacked")
                trace.emit("packet_nack", dst=packet.dst_nic,
                           vi=packet.dst_vi, seq=packet.seq)
                if reliability == ReliabilityLevel.UNRELIABLE:
                    self.packets_dropped += 1
                    return Attempt("dropped")
                return Attempt("nack")
            status = self.nic(packet.dst_nic).deliver(packet, reliability)
            if reliability != ReliabilityLevel.UNRELIABLE:
                self.acks_sent += 1
            return Attempt("delivered", status)

        if plan is not None:
            extra_ns = plan.delay()
            if extra_ns:
                src.kernel.clock.charge(extra_ns, "wire")
                obs.inc("via.fabric.packets_delayed")
                trace.emit("packet_delayed", dst=packet.dst_nic,
                           vi=packet.dst_vi, seq=packet.seq,
                           extra_ns=extra_ns)

        if self._roll_drop():
            self.packets_dropped += 1
            obs.inc("via.fabric.packets_dropped")
            trace.emit("packet_lost", dst=packet.dst_nic,
                       vi=packet.dst_vi, seq=packet.seq)
            return Attempt("dropped")

        wire_packet = packet
        if plan is not None and plan.should_corrupt():
            wire_packet = replace(packet,
                                  payload=plan.corrupt(packet.payload))
            obs.inc("via.fabric.packets_corrupted")
            trace.emit("packet_corrupted", dst=packet.dst_nic,
                       vi=packet.dst_vi, seq=packet.seq)

        # Link-layer CRC check at the receiving NIC.  A sender that
        # stamped no checksum (legacy/control path) is not verified.
        if (wire_packet.checksum is not None
                and payload_checksum(wire_packet.payload)
                != wire_packet.checksum):
            self.packets_nacked += 1
            obs.inc("via.fabric.packets_nacked")
            trace.emit("packet_nack", dst=packet.dst_nic,
                       vi=packet.dst_vi, seq=packet.seq)
            if reliability == ReliabilityLevel.UNRELIABLE:
                # unreliable links silently discard corrupt frames
                self.packets_dropped += 1
                obs.inc("via.fabric.packets_dropped")
                return Attempt("dropped")
            return Attempt("nack")

        dst = self.nic(packet.dst_nic)
        status = dst.deliver(wire_packet, reliability)

        if plan is not None and plan.should_duplicate():
            obs.inc("via.fabric.packets_duplicated")
            trace.emit("packet_duplicated", dst=packet.dst_nic,
                       vi=packet.dst_vi, seq=packet.seq)
            # RELIABLE receivers deduplicate on seq; UNRELIABLE VIs see
            # the duplicate, exactly as on a real unreliable link.
            dst.deliver(wire_packet, reliability)

        if reliability != ReliabilityLevel.UNRELIABLE:
            self.acks_sent += 1
            if self._roll_drop():
                self.acks_dropped += 1
                obs.inc("via.fabric.acks_dropped")
                trace.emit("ack_lost", dst=packet.src_nic,
                           vi=packet.src_vi, seq=packet.seq)
                return Attempt("ack_lost", status)
        return Attempt("delivered", status)

    def transmit(self, src: "VIANic", packet: Packet,
                 reliability: ReliabilityLevel) -> str:
        """Single-shot transmission; returns the delivery status.

        This is the fire-and-forget path: drops and corruption are
        silent successes for ``UNRELIABLE`` VIs (the sender never
        knows), and ``VIP_ERROR_CONN_LOST`` for RELIABLE callers that
        bypass the NIC's retransmission protocol.
        """
        attempt = self.attempt_delivery(src, packet, reliability)
        if attempt.kind in ("delivered", "ack_lost"):
            return attempt.status
        if reliability == ReliabilityLevel.UNRELIABLE:
            return VIP_SUCCESS
        return VIP_ERROR_CONN_LOST

    def attempt_rdma_read(self, src: "VIANic", packet: Packet,
                          reliability: ReliabilityLevel
                          ) -> tuple[Attempt, bytes]:
        """One round-trip attempt of an RDMA-read request.

        The request and the response are each subject to loss; the
        response payload is subject to corruption (caught by CRC and
        reported as a NACK so the requester retries immediately).
        RDMA reads are idempotent, so no deduplication is needed.
        """
        plan = self.fault_plan
        trace = src.kernel.trace
        obs = src.kernel.obs
        self.packets_sent += 2   # request + response
        if obs.enabled:
            obs.metrics.counter("via.fabric.packets_sent").inc(2)
        self._charge_wire(src, 0)

        if self._roll_drop():   # request lost
            self.packets_dropped += 1
            obs.inc("via.fabric.packets_dropped")
            trace.emit("packet_lost", dst=packet.dst_nic,
                       vi=packet.dst_vi, seq=packet.seq, rdma="read_req")
            return Attempt("dropped"), b""

        dst = self.nic(packet.dst_nic)
        status, payload = dst.serve_rdma_read(packet, reliability)
        self._charge_wire(src, len(payload))

        if status == VIP_SUCCESS and self._roll_drop():   # response lost
            self.packets_dropped += 1
            obs.inc("via.fabric.packets_dropped")
            trace.emit("packet_lost", dst=packet.src_nic,
                       vi=packet.src_vi, seq=packet.seq, rdma="read_resp")
            return Attempt("dropped"), b""

        if (status == VIP_SUCCESS and plan is not None
                and plan.should_corrupt()):
            trace.emit("packet_corrupted", dst=packet.src_nic,
                       vi=packet.src_vi, seq=packet.seq, rdma="read_resp")
            self.packets_nacked += 1
            obs.inc("via.fabric.packets_nacked")
            return Attempt("nack"), b""

        return Attempt("delivered", status), payload

    def rdma_read_fetch(self, src: "VIANic", packet: Packet,
                        reliability: ReliabilityLevel
                        ) -> tuple[str, bytes]:
        """Single-shot RDMA-read round trip; returns (status, payload)."""
        attempt, payload = self.attempt_rdma_read(src, packet, reliability)
        if attempt.kind == "delivered":
            return attempt.status, payload
        return VIP_ERROR_CONN_LOST, b""

    def attempt_atomic(self, src: "VIANic", packet: Packet,
                       reliability: ReliabilityLevel
                       ) -> tuple[Attempt, int]:
        """One round-trip attempt of a remote atomic (CMPSWAP/FETCHADD).

        Shaped like :meth:`attempt_rdma_read`, with one crucial
        difference: an atomic is *not* idempotent.  When the response is
        lost *after* the responder executed the RMW, the requester's
        retransmit must be answered from the responder's per-sequence
        response cache (see :meth:`~repro.via.nic.VIANic.serve_atomic`),
        never re-executed — re-applying a FETCH_ADD or re-judging a
        CMPSWAP against the mutated word would corrupt the target.
        The fabric deliberately rolls the response-loss fault *after*
        calling the responder, so chaos plans exercise exactly that
        executed-but-unacknowledged window.
        """
        plan = self.fault_plan
        trace = src.kernel.trace
        obs = src.kernel.obs
        self.packets_sent += 2   # request + response
        if obs.enabled:
            obs.metrics.counter("via.fabric.packets_sent").inc(2)
        # request carries two 8-byte operands, response one 8-byte word
        self._charge_wire(src, 16)

        if self._roll_drop():   # request lost (never executed — safe)
            self.packets_dropped += 1
            obs.inc("via.fabric.packets_dropped")
            trace.emit("packet_lost", dst=packet.dst_nic,
                       vi=packet.dst_vi, seq=packet.seq, atomic="req")
            return Attempt("dropped"), 0

        # Duplicate the *request*: the responder sees the same seq twice
        # and must serve the second from its dedup cache.
        dst = self.nic(packet.dst_nic)
        if plan is not None and plan.should_duplicate():
            obs.inc("via.fabric.packets_duplicated")
            trace.emit("packet_duplicated", dst=packet.dst_nic,
                       vi=packet.dst_vi, seq=packet.seq, atomic="req")
            dst.serve_atomic(packet, reliability)

        status, original = dst.serve_atomic(packet, reliability)
        self._charge_wire(src, 8)

        if status == VIP_SUCCESS and self._roll_drop():  # response lost
            self.packets_dropped += 1
            obs.inc("via.fabric.packets_dropped")
            trace.emit("packet_lost", dst=packet.src_nic,
                       vi=packet.src_vi, seq=packet.seq, atomic="resp")
            return Attempt("dropped"), 0

        if (status == VIP_SUCCESS and plan is not None
                and plan.should_corrupt()):
            trace.emit("packet_corrupted", dst=packet.src_nic,
                       vi=packet.src_vi, seq=packet.seq, atomic="resp")
            self.packets_nacked += 1
            obs.inc("via.fabric.packets_nacked")
            return Attempt("nack"), 0

        return Attempt("delivered", status), original
