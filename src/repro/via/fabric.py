"""The interconnect fabric between VIA NICs.

Delivery is synchronous and deterministic: transmitting a packet calls
straight into the destination NIC's delivery routine, charging wire
latency to the (shared) simulated clock.  Optional packet loss can be
injected for ``UNRELIABLE`` VIs to exercise reliability handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConnectionError_
from repro.sim.rng import make_rng
from repro.via.constants import (
    VIP_SUCCESS, DescriptorType, ReliabilityLevel, ViState,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.via.nic import VIANic


@dataclass
class Packet:
    """One fabric packet (a VIA transfer fits in one simulator packet;
    segmentation does not change any behaviour the paper reasons about)."""

    kind: DescriptorType
    src_nic: str
    src_vi: int
    dst_nic: str
    dst_vi: int
    payload: bytes = b""
    immediate: bytes | None = None
    #: RDMA only
    remote_handle: int | None = None
    remote_va: int | None = None
    #: RDMA read only: how many bytes to fetch
    read_length: int = 0


class Fabric:
    """Registry of NICs plus the wire between them."""

    def __init__(self, seed: int = 0, loss_rate: float = 0.0) -> None:
        self.nics: dict[str, "VIANic"] = {}
        self.loss_rate = loss_rate
        self._rng = make_rng(seed)
        self.packets_sent = 0
        self.packets_dropped = 0
        self._connmgr = None

    @property
    def connmgr(self):
        """The fabric's client/server connection manager (lazy)."""
        if self._connmgr is None:
            from repro.via.connmgr import ConnectionManager
            self._connmgr = ConnectionManager(self)
        return self._connmgr

    # -- topology -----------------------------------------------------------

    def attach(self, nic: "VIANic") -> None:
        """Attach a NIC; names must be unique fabric-wide."""
        if nic.name in self.nics:
            raise ConnectionError_(f"NIC name {nic.name!r} already attached")
        self.nics[nic.name] = nic
        nic.fabric = self

    def nic(self, name: str) -> "VIANic":
        """Look an attached NIC up by name."""
        nic = self.nics.get(name)
        if nic is None:
            raise ConnectionError_(f"no NIC named {name!r} on this fabric")
        return nic

    # -- connection management ------------------------------------------------

    def connect(self, nic_a: "VIANic", vi_a: int, nic_b: "VIANic",
                vi_b: int) -> None:
        """Connect two VIs point-to-point (client/server handshake
        collapsed into one deterministic step)."""
        a = nic_a.vi(vi_a)
        b = nic_b.vi(vi_b)
        if a.state != ViState.IDLE or b.state != ViState.IDLE:
            raise ConnectionError_(
                f"both VIs must be idle (got {a.state.value}, "
                f"{b.state.value})")
        if a.reliability != b.reliability:
            raise ConnectionError_(
                f"reliability mismatch: {a.reliability.value} vs "
                f"{b.reliability.value}")
        if a is b:
            raise ConnectionError_("cannot connect a VI to itself")
        a.peer = (nic_b.name, vi_b)
        b.peer = (nic_a.name, vi_a)
        a.state = b.state = ViState.CONNECTED

    def disconnect(self, nic_a: "VIANic", vi_a: int) -> None:
        """Tear a connection down from one side; the peer goes to ERROR
        if it was still connected (it lost its connection)."""
        a = nic_a.vi(vi_a)
        if a.peer is not None:
            peer_nic, peer_vi = a.peer
            b = self.nic(peer_nic).vi(peer_vi)
            if b.state == ViState.CONNECTED:
                b.enter_error()
        a.peer = None
        a.state = ViState.IDLE

    # -- the wire -----------------------------------------------------------------

    def _charge_wire(self, nic: "VIANic", nbytes: int) -> None:
        costs = nic.kernel.costs
        nic.kernel.clock.charge(costs.nic_wire_latency_ns, "wire")
        nic.kernel.clock.charge(costs.dma_ns(nbytes), "wire")

    def transmit(self, src: "VIANic", packet: Packet,
                 reliability: ReliabilityLevel) -> str:
        """Carry ``packet`` to its destination NIC; returns the delivery
        status (``VIP_SUCCESS`` or an error code)."""
        self.packets_sent += 1
        self._charge_wire(src, len(packet.payload))
        if (reliability == ReliabilityLevel.UNRELIABLE
                and self.loss_rate > 0.0
                and self._rng.random() < self.loss_rate):
            self.packets_dropped += 1
            src.kernel.trace.emit("packet_lost", dst=packet.dst_nic,
                                  vi=packet.dst_vi)
            return VIP_SUCCESS   # fire-and-forget: sender never knows
        dst = self.nic(packet.dst_nic)
        return dst.deliver(packet, reliability)

    def rdma_read_fetch(self, src: "VIANic", packet: Packet,
                        reliability: ReliabilityLevel
                        ) -> tuple[str, bytes]:
        """Round-trip an RDMA-read request; returns (status, payload)."""
        self.packets_sent += 2   # request + response
        self._charge_wire(src, 0)
        dst = self.nic(packet.dst_nic)
        status, payload = dst.serve_rdma_read(packet, reliability)
        self._charge_wire(src, len(payload))
        return status, payload
