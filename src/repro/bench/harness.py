"""Plain-text table/series rendering for benchmark output.

The benchmarks print the same rows/series the paper's evaluation would:
a machine-greppable, human-readable fixed-width format.

When the ``REPRO_BENCH_RECORD`` environment variable names a file, every
table/series rendered (and any explicit :func:`record` call) is also
appended there as one JSON line — ``benchmarks/report.py`` aggregates
those lines, together with pytest-benchmark's host-time medians, into
``BENCH.json``.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence


def record(kind: str, title: str, **payload) -> None:
    """Append one machine-readable benchmark record (JSONL) to the file
    named by ``REPRO_BENCH_RECORD``; no-op when the variable is unset."""
    path = os.environ.get("REPRO_BENCH_RECORD")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"kind": kind, "title": title, **payload},
                            default=str) + "\n")


def fmt_ns(ns: float) -> str:
    """Render nanoseconds with an adaptive unit."""
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def fmt_bool(value: bool) -> str:
    """Render a pass/fail cell."""
    return "yes" if value else "NO"


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]],
                out=None) -> str:
    """Render a fixed-width table; returns (and optionally prints) it."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    parts = [f"== {title} ==", line(headers), sep]
    parts += [line(r) for r in str_rows]
    text = "\n".join(parts)
    print(text, file=out)
    record("table", title, headers=list(headers), rows=str_rows)
    return text


def print_series(title: str, xlabel: str,
                 series: dict[str, list[tuple[float, float]]],
                 ylabel: str = "value", out=None) -> str:
    """Render one or more (x, y) series as a merged table keyed on x —
    the textual form of a figure."""
    record("series", title, xlabel=xlabel, ylabel=ylabel,
           series={name: [[x, y] for x, y in points]
                   for name, points in series.items()})
    xs = sorted({x for points in series.values() for x, _ in points})
    by_name = {name: dict(points) for name, points in series.items()}
    headers = [xlabel] + list(series.keys())
    rows = []
    for x in xs:
        row: list[object] = [x]
        for name in series:
            y = by_name[name].get(x)
            row.append("" if y is None else f"{y:.2f}")
        rows.append(row)
    return print_table(f"{title} [{ylabel}]", headers, rows, out=out)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return fmt_bool(value)
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
