"""Benchmark/report harness: table and series printers shared by the
``benchmarks/`` targets and the examples."""

from repro.bench.harness import (
    fmt_bool, fmt_ns, print_series, print_table,
)

__all__ = ["fmt_bool", "fmt_ns", "print_series", "print_table"]
