"""repro — reproduction of Seifert & Rehm, "Proposing a Mechanism for
Reliably Locking VIA Communication Memory in Linux" (2000).

The package simulates, in pure Python, the full stack the paper reasons
about:

* :mod:`repro.hw` — physical memory, swap device, DMA engines;
* :mod:`repro.kernel` — a Linux-2.2/2.4-style virtual-memory subsystem
  (page map, page tables, VMAs, demand paging, the reclaim path,
  kiobufs, mlock, capabilities);
* :mod:`repro.via` — a Virtual Interface Architecture stack (TPT,
  protection tags, VIs, descriptors, doorbells, completion queues, NIC,
  fabric) with four pluggable memory-locking backends reproducing
  Berkeley-VIA/M-VIA, Giganet cLAN, VMA/mlock, and the paper's
  kiobuf-based proposal;
* :mod:`repro.core` — the paper's mechanism packaged as a library
  (multi-registration accounting, registration cache, the Sec. 3.1
  locktest experiment, consistency audits);
* :mod:`repro.msg` — zero-copy message-passing protocols exercising
  dynamic registration the way MPI implementations do.

Quickstart::

    from repro import Machine
    m = Machine(num_frames=512)
    task = m.kernel.create_task(name="app")
    nic = m.add_nic("nic0")
    # ... see examples/quickstart.py
"""

from repro.errors import ReproError
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.kernel.kernel import Kernel

__version__ = "1.0.0"

__all__ = [
    "ReproError", "SimClock", "CostModel", "Kernel", "Machine",
    "__version__",
]


def __getattr__(name):
    # Machine lives in repro.via.machine; imported lazily to keep the
    # kernel layer importable on its own.
    if name == "Machine":
        from repro.via.machine import Machine
        return Machine
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
