#!/usr/bin/env python3
"""Command-line front end for :mod:`repro.analysis.explore`.

Usage::

    python tools/race_explore.py                      # all scenarios
    python tools/race_explore.py kill_sweep odp_fault # a subset
    python tools/race_explore.py --schedules 16
    python tools/race_explore.py --list
    python tools/race_explore.py --report RACE_REPORT.json

Runs each named scenario through the schedule explorer and checks its
verdict against the scenario's declaration: a scenario with
``expect_races`` must be clean on the identity schedule and must
surface exactly the declared race kinds under exploration; a scenario
without must be clean under every schedule and crash placement.  Exits
1 on any mismatch, 0 otherwise — suitable for ``make race`` and CI.

``--schedules`` defaults to the ``REPRO_RACE_SCHEDULES`` environment
variable (CI scales exploration down with it), then to 8.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.explore import ExploreConfig, explore  # noqa: E402
from repro.analysis.scenarios import SCENARIOS  # noqa: E402


def check(report, scenario) -> list[str]:
    """Mismatches between one exploration verdict and its scenario's
    declaration (empty = pass)."""
    problems = []
    if not report.identity_result.clean:
        problems.append(
            "identity (FIFO) schedule is not clean: "
            + "; ".join(r.race for r in report.identity_result.races))
    expected = set(scenario.expect_races)
    found = report.race_kinds_found
    if found - expected:
        problems.append(f"unexpected race kinds {sorted(found - expected)}")
    if expected - found:
        problems.append(
            f"seeded race kinds {sorted(expected - found)} never detected "
            f"across {report.schedules_run} schedules")
    if not expected:
        for res in report.results:
            if res.san_violations:
                problems.append(
                    f"seed={res.seed} crash={res.crash_point}: sanitizer "
                    + "; ".join(v.check for v in res.san_violations))
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="race-explore", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "scenarios", nargs="*", default=[],
        help="scenario names to explore (default: all registered)")
    parser.add_argument(
        "--schedules", type=int,
        default=int(os.environ.get("REPRO_RACE_SCHEDULES", "8")),
        help="schedules to attempt per scenario, identity included "
             "(default: $REPRO_RACE_SCHEDULES or 8)")
    parser.add_argument(
        "--no-dpor", action="store_true",
        help="disable DPOR-lite pruning (run every candidate seed)")
    parser.add_argument(
        "--crash-with-schedules", action="store_true",
        help="place every crash point under every surviving seed, not "
             "just the identity schedule")
    parser.add_argument(
        "--report", metavar="PATH",
        help="write the combined JSON report to PATH")
    parser.add_argument(
        "--list", action="store_true",
        help="print the registered scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name, sc in SCENARIOS.items():
            tags = f" [seeds: {', '.join(sc.expect_races)}]" \
                if sc.expect_races else ""
            print(f"{name:28s} {sc.description}{tags}")
        return 0

    names = args.scenarios or list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}; "
              f"known: {', '.join(SCENARIOS)}", file=sys.stderr)
        return 2

    config = ExploreConfig(schedules=args.schedules,
                           dpor=not args.no_dpor,
                           crash_with_schedules=args.crash_with_schedules)
    failed = False
    payloads = []
    for name in names:
        scenario = SCENARIOS[name]
        report = explore(scenario, config)
        payloads.append(check_result := report.to_payload())
        problems = check(report, scenario)
        check_result["problems"] = problems
        verdict = "FAIL" if problems else "ok"
        print(f"{name:28s} {verdict}  schedules={report.schedules_run} "
              f"pruned={report.pruned} "
              f"races={sorted(report.race_kinds_found) or '[]'}")
        for problem in problems:
            failed = True
            print(f"    {problem}")

    if args.report:
        Path(args.report).write_text(
            json.dumps({"schedules": args.schedules,
                        "scenarios": payloads}, indent=2) + "\n")
        print(f"wrote {args.report}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
