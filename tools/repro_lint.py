#!/usr/bin/env python3
"""Command-line front end for :mod:`repro.analysis.lint`.

Usage::

    python tools/repro_lint.py                 # lint src/repro
    python tools/repro_lint.py src/repro tests # explicit paths
    python tools/repro_lint.py --select broad-except,wall-clock
    python tools/repro_lint.py --disable kernel-mutation
    python tools/repro_lint.py --list-rules

Exits 1 if any finding survives pragmas, 0 otherwise — suitable for
``make lint`` and CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint import RULES, lint_paths  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "paths", nargs="*", default=[],
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule names to run (default: all)")
    parser.add_argument(
        "--disable", metavar="RULES",
        help="comma-separated rule names to skip")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the known rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, summary in RULES.items():
            print(f"{name:24s} {summary}")
        return 0

    rules = set(args.select.split(",")) if args.select else set(RULES)
    if args.disable:
        rules -= set(args.disable.split(","))
    paths = args.paths or [str(REPO_ROOT / "src" / "repro")]

    try:
        findings = lint_paths(paths, rules)
    except ValueError as exc:        # unknown rule name
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.format())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"repro-lint: clean ({', '.join(sorted(rules))})",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
